//! Soft constraints and the Chord algorithm (paper §4.1, Appendix D,
//! Figure 6c).
//!
//! A soft storage constraint asks not for one configuration but for the
//! trade-off curve between workload cost and index storage.  CoPhy
//! re-weights the objective as
//!
//! ```text
//! f_λ(X) = λ · cost(X, W) + (1 − λ) · scale · size(X)
//! ```
//!
//! and retrieves Pareto-optimal points by solving for selected values of
//! `λ ∈ [0, 1]`.  The **Chord algorithm** [9] picks those values: starting
//! from the extreme points it recursively solves at the λ induced by each
//! chord's slope and keeps the new point only if it is further than `ε` from
//! the chord — yielding a provably good approximation of the frontier with
//! few solver invocations.
//!
//! Successive λ points are **warm-chained**: the BIP is built once, each λ
//! step is a [`ModelDelta::SetObjective`] over the same [`DeltaModel`], and
//! the solve runs through [`BranchBound::resolve`] with a shared
//! [`ResolveContext`] — the root LP restarts phase 2 of the primal simplex
//! from the previous λ's optimal basis (an objective edit keeps that basis
//! primal feasible), the previous configuration seeds the incumbent, and the
//! pseudo-cost table carries over (the paper reports a 4× speed-up for
//! warm-started sweeps over solving each point from scratch).

use std::time::{Duration, Instant};

use cophy_bip::{BranchBound, DeltaModel, ModelDelta, ResolveContext, SolveOptions};
use cophy_catalog::Configuration;
use cophy_inum::PreparedWorkload;

use crate::bipgen::BipGen;
use crate::cgen::CandidateSet;
use crate::constraints::ConstraintSet;
use crate::solver::CoPhy;

/// One point of the Pareto frontier.
#[derive(Debug, Clone)]
pub struct ParetoPoint {
    pub lambda: f64,
    pub configuration: Configuration,
    /// INUM-estimated workload cost (the `cost` axis).
    pub workload_cost: f64,
    /// Total index storage (the `size` axis).
    pub size_bytes: u64,
    /// Time spent solving this point (Figure 6c's bars).
    pub solve_time: Duration,
}

/// Pareto-frontier explorer for a soft storage constraint.
#[derive(Debug, Clone)]
pub struct ChordExplorer {
    /// Relative chord-distance threshold ε for recursing.
    pub epsilon: f64,
    /// Hard cap on solver invocations.
    pub max_points: usize,
}

impl Default for ChordExplorer {
    fn default() -> Self {
        ChordExplorer { epsilon: 0.02, max_points: 9 }
    }
}

impl ChordExplorer {
    /// Explore the cost/size trade-off for the prepared workload.  Returns
    /// points sorted by λ (ascending: small λ = storage-frugal end).
    pub fn explore(
        &self,
        cophy: &CoPhy<'_>,
        prepared: &PreparedWorkload,
        candidates: &CandidateSet,
    ) -> Vec<ParetoPoint> {
        let schema = cophy.optimizer().schema();
        let cm = cophy.optimizer().cost_model();
        // Build the unbudgeted BIP once; every λ is an objective re-weight
        // of the same model, warm-chained through one ResolveContext.
        let (model, mapping) =
            BipGen::default().model(schema, cm, prepared, candidates, &ConstraintSet::none());
        // Normalize storage into cost units so λ spans a meaningful range:
        // one "cost unit" per (data_bytes / baseline_cost) bytes.
        let baseline = prepared.cost(schema, cm, &Configuration::empty());
        let scale = baseline / schema.data_bytes() as f64;
        // λ=1 objective per variable, and each variable's storage footprint
        // (nonzero only for the z columns): f_λ is their affine blend.
        let base_obj: Vec<f64> = model.objective().to_vec();
        let mut sizes = vec![0.0f64; model.n_vars()];
        for (pos, v) in mapping.z.iter().enumerate() {
            let ix = candidates.get(cophy_catalog::IndexId(pos as u32));
            sizes[v.0 as usize] = ix.size_bytes(schema) as f64;
        }

        let bb = BranchBound::new();
        let opts = SolveOptions { budget: cophy.options.budget, ..Default::default() };
        let mut dm = DeltaModel::new(model);
        let mut ctx = ResolveContext::new();
        let mut solves = 0usize;
        let solve_at =
            |lambda: f64, dm: &mut DeltaModel, ctx: &mut ResolveContext, solves: &mut usize| {
                *solves += 1;
                let t0 = Instant::now();
                let coeffs: Vec<f64> = base_obj
                    .iter()
                    .zip(&sizes)
                    .map(|(&c, &s)| lambda * c + (1.0 - lambda) * scale * s)
                    .collect();
                dm.apply(ModelDelta::SetObjective { coeffs });
                let r = bb.resolve(dm, &opts, ctx);
                let configuration = if r.x.len() == dm.model().n_vars() {
                    mapping.extract_configuration(&r.x, candidates)
                } else {
                    Configuration::empty()
                };
                let workload_cost = prepared.cost(schema, cm, &configuration);
                let size_bytes = configuration.size_bytes(schema);
                ParetoPoint {
                    lambda,
                    configuration,
                    workload_cost,
                    size_bytes,
                    solve_time: t0.elapsed(),
                }
            };

        // Extremes: λ→0 is the empty configuration by construction; solve it
        // analytically to save a solver call.
        let empty = ParetoPoint {
            lambda: 0.0,
            configuration: Configuration::empty(),
            workload_cost: baseline,
            size_bytes: 0,
            solve_time: Duration::ZERO,
        };
        let full = solve_at(1.0, &mut dm, &mut ctx, &mut solves);

        let mut points = vec![empty, full];
        // Chord recursion over a worklist of (lo, hi) index pairs into
        // `points` (kept sorted by λ).
        let mut segments = vec![(0usize, 1usize)];
        while let Some((lo_i, hi_i)) = segments.pop() {
            if solves >= self.max_points {
                break;
            }
            let (a, b) = (&points[lo_i], &points[hi_i]);
            // Weight vector orthogonal to the chord in normalized coords.
            let cost_span = (a.workload_cost - b.workload_cost).abs();
            let size_span = (a.size_bytes as f64 - b.size_bytes as f64).abs() * scale;
            if cost_span + size_span < 1e-9 {
                continue;
            }
            let lambda = (size_span / (cost_span + size_span)).clamp(0.01, 0.99);
            let p = solve_at(lambda, &mut dm, &mut ctx, &mut solves);
            // Distance of p from the chord (normalized space).
            let d = chord_distance(
                (a.workload_cost, a.size_bytes as f64 * scale),
                (b.workload_cost, b.size_bytes as f64 * scale),
                (p.workload_cost, p.size_bytes as f64 * scale),
            );
            if d > self.epsilon * baseline {
                // Insert between a and b (λ between theirs after sorting).
                points.push(p);
                points.sort_by(|x, y| x.lambda.total_cmp(&y.lambda));
                // Recurse on the two sub-segments around the new point.
                let pos = points
                    .iter()
                    .position(|x| (x.lambda - lambda).abs() < 1e-12)
                    .expect("just inserted");
                if pos > 0 {
                    segments.push((pos - 1, pos));
                }
                if pos + 1 < points.len() {
                    segments.push((pos, pos + 1));
                }
            }
        }

        points.sort_by(|x, y| x.lambda.total_cmp(&y.lambda));
        points
    }
}

/// Euclidean distance of point `p` from the line through `a`, `b`.
fn chord_distance(a: (f64, f64), b: (f64, f64), p: (f64, f64)) -> f64 {
    let (ax, ay) = a;
    let (bx, by) = b;
    let (px, py) = p;
    let dx = bx - ax;
    let dy = by - ay;
    let len = (dx * dx + dy * dy).sqrt();
    if len < 1e-12 {
        return ((px - ax).powi(2) + (py - ay).powi(2)).sqrt();
    }
    ((dy * px - dx * py + bx * ay - by * ax) / len).abs()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::CoPhyOptions;
    use cophy_catalog::TpchGen;
    use cophy_inum::Inum;
    use cophy_optimizer::{SystemProfile, WhatIfOptimizer};
    use cophy_workload::HomGen;

    fn explore(n_queries: usize) -> Vec<ParetoPoint> {
        let o = WhatIfOptimizer::new(TpchGen::default().schema(), SystemProfile::A);
        let w = HomGen::new(9).generate(o.schema(), n_queries);
        let cophy = CoPhy::new(&o, CoPhyOptions::default());
        let inum = Inum::new(&o);
        let prepared = inum.prepare_workload(&w);
        let candidates = crate::cgen::CGen::default().generate(o.schema(), &w);
        ChordExplorer::default().explore(&cophy, &prepared, &candidates)
    }

    #[test]
    fn frontier_is_monotone_tradeoff() {
        let points = explore(15);
        assert!(points.len() >= 2);
        // λ = 0 end: empty config.
        assert_eq!(points[0].size_bytes, 0);
        // As λ grows, more storage is spent and cost falls (weakly).
        for w in points.windows(2) {
            assert!(
                w[1].size_bytes >= w[0].size_bytes,
                "size must weakly grow with λ: {:?}",
                points.iter().map(|p| (p.lambda, p.size_bytes)).collect::<Vec<_>>()
            );
            assert!(
                w[1].workload_cost <= w[0].workload_cost * 1.01,
                "cost must weakly fall with λ"
            );
        }
        // The λ = 1 end actually helps.
        assert!(points.last().unwrap().workload_cost < points[0].workload_cost);
    }

    #[test]
    fn chord_distance_basics() {
        // Distance from the x-axis line.
        let d = chord_distance((0.0, 0.0), (10.0, 0.0), (5.0, 3.0));
        assert!((d - 3.0).abs() < 1e-9);
        // Collinear point → zero.
        let d2 = chord_distance((0.0, 0.0), (10.0, 10.0), (4.0, 4.0));
        assert!(d2 < 1e-9);
        // Degenerate chord → plain distance.
        let d3 = chord_distance((1.0, 1.0), (1.0, 1.0), (4.0, 5.0));
        assert!((d3 - 5.0).abs() < 1e-9);
    }

    #[test]
    fn respects_max_points_budget() {
        let o = WhatIfOptimizer::new(TpchGen::default().schema(), SystemProfile::A);
        let w = HomGen::new(10).generate(o.schema(), 10);
        let cophy = CoPhy::new(&o, CoPhyOptions::default());
        let inum = Inum::new(&o);
        let prepared = inum.prepare_workload(&w);
        let candidates = crate::cgen::CGen::default().generate(o.schema(), &w);
        let explorer = ChordExplorer { max_points: 3, ..Default::default() };
        let points = explorer.explore(&cophy, &prepared, &candidates);
        // analytic empty point + at most 3 solves
        assert!(points.len() <= 4);
    }
}
