//! BIPGen: Theorem 1 made executable.
//!
//! From a prepared workload (INUM templates) and a candidate set, BIPGen
//! produces the compact BIP in two isomorphic representations:
//!
//! * [`BipGen::model`] — the *literal* Theorem-1 program over variables
//!   `y_qk`, `x_qkia`, `z_a` for the generic branch-and-bound backend (and
//!   for the equivalence tests against exhaustive search);
//! * [`BipGen::block_problem`] — the same program in block-angular form for
//!   the Lagrangian backend, which scales to the paper's large instances.
//!
//! Variable pruning: a slot's `x` variable is dropped when its `γ` is
//! dominated by the slot's `I∅` cost (`γ ≥ γ_I∅` with the heap admissible) —
//! replacing such an access by the heap scan never hurts, so the solution
//! space is unchanged while the program shrinks drastically.  The knob
//! `prune_dominated` exists for the ablation bench.

use cophy_bip::{Alt, Block, BlockProblem, ConstrId, LinExpr, Model, Sense, SlotChoices, VarId};
use cophy_catalog::{Configuration, Schema};
use cophy_inum::{PreparedQuery, PreparedWorkload};
use cophy_optimizer::CostModel;

use crate::cgen::CandidateSet;
use crate::constraints::{Cmp, ConstraintSet};

/// BIP generator options.
#[derive(Debug, Clone)]
pub struct BipGen {
    /// Drop `x` variables dominated by the heap fallback (on by default).
    pub prune_dominated: bool,
}

impl Default for BipGen {
    fn default() -> Self {
        BipGen { prune_dominated: true }
    }
}

/// One slot's variables: the heap fallback (if admissible) and the surviving
/// candidate accesses, each with its `γ` cost.
#[derive(Debug, Clone)]
pub struct SlotVars {
    pub heap: Option<(VarId, f64)>,
    /// `(candidate position, x variable, γ)`.
    pub choices: Vec<(u32, VarId, f64)>,
}

/// One template alternative's variables.
#[derive(Debug, Clone)]
pub struct TemplateVars {
    pub y: VarId,
    /// `f_q β_qk` (weighted internal cost).
    pub base: f64,
    pub slots: Vec<SlotVars>,
}

/// Per-query variable layout (position-aligned with the prepared workload).
#[derive(Debug, Clone, Default)]
pub struct QueryVars {
    pub templates: Vec<TemplateVars>,
}

/// Mapping from model variables back to the tuning domain.
#[derive(Debug, Clone)]
pub struct BipMapping {
    /// `z_a` variable per candidate (position-aligned with the candidate set).
    pub z: Vec<VarId>,
    /// Per-query template/slot variable layout (Theorem 1's structure).
    pub queries: Vec<QueryVars>,
    /// Total `y` variables (one per query-template).
    pub n_y: usize,
    /// Total `x` variables after pruning.
    pub n_x: usize,
    /// The model row carrying the storage budget, if the constraint set has
    /// one — the interactive session's `ModelDelta::SetRhs` handle for
    /// warm-chained budget sweeps.
    pub storage_row: Option<ConstrId>,
}

impl BipMapping {
    /// Read a configuration off a solved assignment.
    pub fn extract_configuration(&self, x: &[f64], candidates: &CandidateSet) -> Configuration {
        let mut cfg = Configuration::empty();
        for (pos, v) in self.z.iter().enumerate() {
            if x[v.0 as usize] >= 0.5 {
                cfg.insert(candidates.get(cophy_catalog::IndexId(pos as u32)).clone());
            }
        }
        cfg
    }

    /// Best integral completion of a candidate selection: set `z` from
    /// `selected`, then per query pick the cheapest instantiable template
    /// and per-slot access.  Used to seed the generic backend with the
    /// Lagrangian backend's storage-only solution (the completion satisfies
    /// all Theorem-1 rows by construction; any extra constraint rows are
    /// repaired by the solver's rounding heuristic).
    pub fn completion(&self, selected: &[bool], n_vars: usize) -> Vec<f64> {
        let mut x = vec![0.0; n_vars];
        for (pos, v) in self.z.iter().enumerate() {
            if selected[pos] {
                x[v.0 as usize] = 1.0;
            }
        }
        for q in &self.queries {
            // Cheapest template under the selection.
            let mut best: Option<(f64, usize)> = None;
            for (k, t) in q.templates.iter().enumerate() {
                let mut total = t.base;
                let mut ok = true;
                for s in &t.slots {
                    let mut sbest = s.heap.map(|(_, h)| h);
                    for &(cand, _, g) in &s.choices {
                        if selected[cand as usize] && sbest.is_none_or(|c| g < c) {
                            sbest = Some(g);
                        }
                    }
                    match sbest {
                        Some(c) => total += c,
                        None => {
                            ok = false;
                            break;
                        }
                    }
                }
                if ok && best.is_none_or(|(c, _)| total < c) {
                    best = Some((total, k));
                }
            }
            let Some((_, k)) = best else { continue };
            let t = &q.templates[k];
            x[t.y.0 as usize] = 1.0;
            for s in &t.slots {
                let mut sbest: Option<(f64, VarId)> = s.heap.map(|(v, h)| (h, v));
                for &(cand, v, g) in &s.choices {
                    if selected[cand as usize] && sbest.as_ref().is_none_or(|(c, _)| g < *c) {
                        sbest = Some((g, v));
                    }
                }
                if let Some((_, v)) = sbest {
                    x[v.0 as usize] = 1.0;
                }
            }
        }
        x
    }
}

/// A fully generated tuning problem (both solver forms plus bookkeeping).
#[derive(Debug)]
pub struct TuningProblem {
    pub block: BlockProblem,
    /// `Σ_q f_q c_q`: the fixed update-base cost excluded from optimization.
    pub fixed_cost: f64,
}

impl BipGen {
    /// Per-slot candidate survivors: `(candidate position, γ)` pairs.
    fn slot_choices(
        &self,
        schema: &Schema,
        cm: &CostModel,
        pq: &PreparedQuery,
        tpl_idx: usize,
        slot_idx: usize,
        candidates: &CandidateSet,
    ) -> (Option<f64>, Vec<(u32, f64)>) {
        let tpl = &pq.templates[tpl_idx];
        let slot = &tpl.slots[slot_idx];
        let fallback = slot.heap_cost;
        let mut choices = Vec::new();
        for (id, ix) in candidates.iter() {
            if ix.table != slot.table {
                continue;
            }
            if let Some(g) = tpl.gamma(schema, cm, &pq.query, slot_idx, ix) {
                if self.prune_dominated {
                    if let Some(h) = fallback {
                        if g >= h {
                            continue;
                        }
                    }
                }
                choices.push((id.0, g));
            }
        }
        (fallback, choices)
    }

    /// Build the block-angular form (Lagrangian backend).
    ///
    /// Costs are pre-weighted by `f_q`; the storage budget (if any) becomes
    /// the knapsack row.  Richer constraints are not representable here —
    /// the Solver routes such instances to the generic backend.
    pub fn block_problem(
        &self,
        schema: &Schema,
        cm: &CostModel,
        prepared: &PreparedWorkload,
        candidates: &CandidateSet,
        constraints: &ConstraintSet,
    ) -> TuningProblem {
        debug_assert!(constraints.is_storage_only(), "block form supports storage only");
        let n = candidates.len();
        let mut item_cost = vec![0.0f64; n];
        for pq in &prepared.queries {
            if pq.update.is_none() {
                continue;
            }
            for (id, ix) in candidates.iter() {
                item_cost[id.0 as usize] += pq.weight * pq.ucost(schema, cm, ix);
            }
        }
        let item_size: Vec<f64> =
            candidates.iter().map(|(id, _)| candidates.size_bytes(id) as f64).collect();

        let mut blocks = Vec::with_capacity(prepared.queries.len());
        let mut fixed_cost = 0.0;
        for pq in &prepared.queries {
            fixed_cost += pq.weight * pq.fixed_update_cost;
            let mut alts = Vec::with_capacity(pq.templates.len());
            for k in 0..pq.templates.len() {
                let tpl = &pq.templates[k];
                let mut slots = Vec::with_capacity(tpl.slots.len());
                for s in 0..tpl.slots.len() {
                    let (fallback, choices) = self.slot_choices(schema, cm, pq, k, s, candidates);
                    slots.push(SlotChoices {
                        fallback: fallback.map(|f| pq.weight * f),
                        choices: choices.into_iter().map(|(a, g)| (a, pq.weight * g)).collect(),
                    });
                }
                alts.push(Alt { base: pq.weight * tpl.internal_cost, slots });
            }
            blocks.push(Block { alts });
        }

        TuningProblem {
            block: BlockProblem {
                n_items: n,
                item_cost,
                item_size,
                budget: constraints.storage_budget().map(|b| b as f64),
                blocks,
            },
            fixed_cost,
        }
    }

    /// Build the literal Theorem-1 model (generic backend).
    pub fn model(
        &self,
        schema: &Schema,
        cm: &CostModel,
        prepared: &PreparedWorkload,
        candidates: &CandidateSet,
        constraints: &ConstraintSet,
    ) -> (Model, BipMapping) {
        let mut m = Model::new();
        // z_a variables with their update-cost objective coefficients.
        let mut z_obj = vec![0.0f64; candidates.len()];
        for pq in &prepared.queries {
            if pq.update.is_none() {
                continue;
            }
            for (id, ix) in candidates.iter() {
                z_obj[id.0 as usize] += pq.weight * pq.ucost(schema, cm, ix);
            }
        }
        let z: Vec<VarId> = candidates
            .iter()
            .map(|(id, ix)| m.add_var(format!("z_{}", ix.describe(schema)), z_obj[id.0 as usize]))
            .collect();

        let mut n_y = 0usize;
        let mut n_x = 0usize;
        // Per-query cost expressions (unweighted), for query-cost constraints.
        let mut cost_exprs: Vec<LinExpr> = Vec::with_capacity(prepared.queries.len());
        let mut queries: Vec<QueryVars> = Vec::with_capacity(prepared.queries.len());

        for (qi, pq) in prepared.queries.iter().enumerate() {
            let mut yq = Vec::with_capacity(pq.templates.len());
            let mut cost_expr = LinExpr::new();
            for (k, tpl) in pq.templates.iter().enumerate() {
                let y = m.add_var(format!("y_q{qi}_k{k}"), pq.weight * tpl.internal_cost);
                cost_expr.add(y, tpl.internal_cost);
                yq.push(y);
                n_y += 1;
            }
            // Σ_k y_qk = 1
            let mut ysum = LinExpr::new();
            for &y in &yq {
                ysum.add(y, 1.0);
            }
            m.add_constraint(ysum, Sense::Eq, 1.0);

            let mut qvars = QueryVars::default();
            for (k, tpl) in pq.templates.iter().enumerate() {
                let mut tvars = TemplateVars {
                    y: yq[k],
                    base: pq.weight * tpl.internal_cost,
                    slots: Vec::with_capacity(tpl.slots.len()),
                };
                for s in 0..tpl.slots.len() {
                    let (fallback, choices) = self.slot_choices(schema, cm, pq, k, s, candidates);
                    let mut svars = SlotVars { heap: None, choices: Vec::new() };
                    let mut xsum = LinExpr::new();
                    if let Some(h) = fallback {
                        let xh = m.add_var(format!("x_q{qi}_k{k}_s{s}_heap"), pq.weight * h);
                        cost_expr.add(xh, h);
                        xsum.add(xh, 1.0);
                        svars.heap = Some((xh, pq.weight * h));
                        n_x += 1;
                    }
                    for (a, g) in choices {
                        let xv = m.add_var(format!("x_q{qi}_k{k}_s{s}_a{a}"), pq.weight * g);
                        cost_expr.add(xv, g);
                        xsum.add(xv, 1.0);
                        svars.choices.push((a, xv, pq.weight * g));
                        n_x += 1;
                        // x ≤ z   (z_a ≥ x_qkia)
                        m.add_constraint(
                            LinExpr::new().term(xv, 1.0).term(z[a as usize], -1.0),
                            Sense::Le,
                            0.0,
                        );
                    }
                    // Σ_a x_qkia = y_qk
                    xsum.add(yq[k], -1.0);
                    m.add_constraint(xsum, Sense::Eq, 0.0);
                    tvars.slots.push(svars);
                }
                qvars.templates.push(tvars);
            }
            queries.push(qvars);
            cost_exprs.push(cost_expr);
        }

        // z-only constraint rows, constraint by constraint so the storage
        // row's id can be recorded for interactive RHS sweeps.
        let mut storage_row = None;
        for c in &constraints.hard {
            let is_storage = matches!(c, crate::constraints::Constraint::Storage { .. });
            for (terms, cmp, rhs) in c.z_rows(schema, candidates) {
                let mut e = LinExpr::new();
                for (pos, coeff) in terms {
                    e.add(z[pos], coeff);
                }
                let sense = match cmp {
                    Cmp::Le => Sense::Le,
                    Cmp::Ge => Sense::Ge,
                    Cmp::Eq => Sense::Eq,
                };
                let cid = m.add_constraint(e, sense, rhs);
                if is_storage && storage_row.is_none() {
                    storage_row = Some(cid);
                }
            }
        }

        // Query-cost constraints (E.2): cost(q, X) ≤ factor · cost(q, X0).
        let bounds = constraints.query_cost_bounds();
        if !bounds.is_empty() {
            let x0 = Configuration::baseline(schema);
            for (target, factor) in bounds {
                for (qi, pq) in prepared.queries.iter().enumerate() {
                    if let Some(t) = target {
                        if t != pq.qid {
                            continue;
                        }
                    }
                    let baseline = pq.cost(schema, cm, &x0);
                    m.add_constraint(cost_exprs[qi].clone(), Sense::Le, factor * baseline);
                }
            }
        }

        (m, BipMapping { z, queries, n_y, n_x, storage_row })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cophy_bip::{BranchBound, LagrangianSolver, SolveOptions};
    use cophy_catalog::TpchGen;
    use cophy_inum::Inum;
    use cophy_optimizer::{SystemProfile, WhatIfOptimizer};
    use cophy_workload::{HomGen, Workload};

    fn setup(n_queries: usize, seed: u64) -> (WhatIfOptimizer, Workload) {
        let o = WhatIfOptimizer::new(TpchGen::default().schema(), SystemProfile::A);
        let w = HomGen::new(seed).generate(o.schema(), n_queries);
        (o, w)
    }

    /// Exhaustive optimum over candidate subsets via the INUM cost function.
    fn brute_force_tuning(
        o: &WhatIfOptimizer,
        prepared: &cophy_inum::PreparedWorkload,
        candidates: &CandidateSet,
        constraints: &ConstraintSet,
    ) -> f64 {
        assert!(candidates.len() <= 14);
        let mut best = f64::INFINITY;
        for mask in 0..(1u32 << candidates.len()) {
            let cfg = Configuration::from_indexes(
                candidates.iter().filter(|(id, _)| mask >> id.0 & 1 == 1).map(|(_, ix)| ix.clone()),
            );
            if constraints.check_configuration(o.schema(), &cfg).is_err() {
                continue;
            }
            let c = prepared.cost(o.schema(), o.cost_model(), &cfg);
            best = best.min(c);
        }
        best
    }

    #[test]
    fn theorem1_model_matches_exhaustive_search() {
        let (o, w) = setup(6, 21);
        let inum = Inum::new(&o);
        let prepared = inum.prepare_workload(&w);
        // Small candidate set to keep the oracle cheap.
        let candidates = crate::cgen::CGen::default().generate(o.schema(), &w).truncate(8);
        let constraints = ConstraintSet::storage_fraction(o.schema(), 0.15);

        let (model, mapping) = BipGen::default().model(
            o.schema(),
            o.cost_model(),
            &prepared,
            &candidates,
            &constraints,
        );
        let r = BranchBound::new().solve(&model, &SolveOptions::default());
        assert_eq!(r.status, cophy_bip::MipStatus::Optimal);

        let fixed: f64 = prepared.queries.iter().map(|pq| pq.weight * pq.fixed_update_cost).sum();
        let expect = brute_force_tuning(&o, &prepared, &candidates, &constraints);
        assert!(
            (r.objective + fixed - expect).abs() / expect < 1e-6,
            "BIP optimum {} ≠ exhaustive optimum {}",
            r.objective + fixed,
            expect
        );
        // The extracted configuration achieves the same INUM cost.
        let cfg = mapping.extract_configuration(&r.x, &candidates);
        let achieved = prepared.cost(o.schema(), o.cost_model(), &cfg);
        assert!((achieved - expect).abs() / expect < 1e-6);
    }

    #[test]
    fn block_problem_matches_model_objective() {
        let (o, w) = setup(5, 33);
        let inum = Inum::new(&o);
        let prepared = inum.prepare_workload(&w);
        let candidates = crate::cgen::CGen::default().generate(o.schema(), &w).truncate(10);
        let constraints = ConstraintSet::storage_fraction(o.schema(), 0.2);

        let gen = BipGen::default();
        let tp =
            gen.block_problem(o.schema(), o.cost_model(), &prepared, &candidates, &constraints);
        // Block evaluation at a selection == INUM cost of the configuration.
        for mask in [0u32, 1, 3, 5, 0b1010101010] {
            let sel: Vec<bool> = (0..candidates.len()).map(|a| mask >> a & 1 == 1).collect();
            let cfg = Configuration::from_indexes(
                candidates.iter().filter(|(id, _)| sel[id.0 as usize]).map(|(_, ix)| ix.clone()),
            );
            let block_cost = tp.block.evaluate(&sel).unwrap() + tp.fixed_cost;
            let inum_cost = prepared.cost(o.schema(), o.cost_model(), &cfg);
            assert!(
                (block_cost - inum_cost).abs() / inum_cost < 1e-9,
                "mask {mask:#b}: block {block_cost} vs inum {inum_cost}"
            );
        }
    }

    #[test]
    fn lagrangian_on_block_matches_exhaustive_closely() {
        let (o, w) = setup(6, 44);
        let inum = Inum::new(&o);
        let prepared = inum.prepare_workload(&w);
        let candidates = crate::cgen::CGen::default().generate(o.schema(), &w).truncate(10);
        let constraints = ConstraintSet::storage_fraction(o.schema(), 0.15);

        let tp = BipGen::default().block_problem(
            o.schema(),
            o.cost_model(),
            &prepared,
            &candidates,
            &constraints,
        );
        let r = LagrangianSolver {
            budget: cophy_bip::SolveBudget {
                gap_limit: 1e-6,
                node_limit: Some(600),
                ..Default::default()
            },
            ..Default::default()
        }
        .solve(&tp.block);
        let expect = brute_force_tuning(&o, &prepared, &candidates, &constraints);
        // bound ≤ optimum ≤ incumbent, incumbent near-optimal.
        assert!(r.bound <= expect - tp.fixed_cost + 1e-6);
        assert!(r.objective + tp.fixed_cost >= expect - 1e-6);
        assert!(
            (r.objective + tp.fixed_cost - expect) / expect < 0.02,
            "Lagrangian incumbent {} too far from optimum {}",
            r.objective + tp.fixed_cost,
            expect
        );
    }

    #[test]
    fn pruning_shrinks_model_without_changing_optimum() {
        let (o, w) = setup(4, 55);
        let inum = Inum::new(&o);
        let prepared = inum.prepare_workload(&w);
        let candidates = crate::cgen::CGen::default().generate(o.schema(), &w).truncate(6);
        let constraints = ConstraintSet::storage_fraction(o.schema(), 0.2);

        let pruned = BipGen { prune_dominated: true };
        let full = BipGen { prune_dominated: false };
        let (mp, map_p) =
            pruned.model(o.schema(), o.cost_model(), &prepared, &candidates, &constraints);
        let (mf, map_f) =
            full.model(o.schema(), o.cost_model(), &prepared, &candidates, &constraints);
        assert!(map_p.n_x <= map_f.n_x);
        let rp = BranchBound::new().solve(&mp, &SolveOptions::default());
        let rf = BranchBound::new().solve(&mf, &SolveOptions::default());
        assert!(
            (rp.objective - rf.objective).abs() / rf.objective.abs().max(1.0) < 1e-6,
            "pruning changed the optimum: {} vs {}",
            rp.objective,
            rf.objective
        );
    }

    #[test]
    fn model_size_grows_linearly_in_queries() {
        let (o, w) = setup(8, 66);
        let inum = Inum::new(&o);
        let candidates = crate::cgen::CGen::default().generate(o.schema(), &w).truncate(12);
        let constraints = ConstraintSet::storage_fraction(o.schema(), 1.0);
        let gen = BipGen::default();

        let small = inum.prepare_workload(&w.truncate(4));
        let big = inum.prepare_workload(&w);
        let (ms, _) = gen.model(o.schema(), o.cost_model(), &small, &candidates, &constraints);
        let (mb, _) = gen.model(o.schema(), o.cost_model(), &big, &candidates, &constraints);
        // Doubling queries should roughly double variables (never explode).
        assert!(mb.n_vars() <= ms.n_vars() * 3 + candidates.len());
    }
}
