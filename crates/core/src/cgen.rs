//! CGen: candidate-index generation (paper §4).
//!
//! CoPhy's candidate generator deliberately applies **no aggressive pruning**
//! — the BIP solver can cope with thousands of candidates (the paper runs
//! 1933 and even 10 000), so CGen only uses "more or less well known
//! heuristics" to propose per-query candidates and unions them:
//!
//! * single-column indexes on predicate / join / group / order columns,
//! * equality-prefix + range composites,
//! * order-delivering composites (eq prefix + ORDER BY / GROUP BY columns),
//! * join-column composites with selective predicate columns,
//! * covering variants (INCLUDE payload for index-only plans).
//!
//! The DBA may merge hand-curated indexes via [`CandidateSet::extend`], and
//! [`CandidateSet::pad_random`] reproduces the paper's `S_L` (10k random
//! candidates) stress set.

use std::collections::HashSet;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use cophy_catalog::{ColumnId, Index, IndexId, Schema};
use cophy_workload::{Query, Workload};

/// Limits for candidate generation.
#[derive(Debug, Clone)]
pub struct CGen {
    /// Maximum key columns of a generated composite.
    pub max_key_columns: usize,
    /// Maximum INCLUDE columns of covering variants (0 disables covering).
    pub max_include_columns: usize,
}

impl Default for CGen {
    fn default() -> Self {
        CGen { max_key_columns: 3, max_include_columns: 14 }
    }
}

/// The candidate set `S = S_1 ∪ … ∪ S_n`, with dense [`IndexId`]s.
#[derive(Debug, Clone, Default)]
pub struct CandidateSet {
    indexes: Vec<Index>,
    sizes: Vec<u64>,
}

impl CandidateSet {
    pub fn new() -> Self {
        CandidateSet::default()
    }

    /// Add an index if not already present; returns its id.
    pub fn insert(&mut self, schema: &Schema, ix: Index) -> IndexId {
        if let Some(pos) = self.indexes.iter().position(|i| *i == ix) {
            return IndexId(pos as u32);
        }
        let id = IndexId(self.indexes.len() as u32);
        self.sizes.push(ix.size_bytes(schema));
        self.indexes.push(ix);
        id
    }

    pub fn extend(&mut self, schema: &Schema, extra: impl IntoIterator<Item = Index>) {
        for ix in extra {
            self.insert(schema, ix);
        }
    }

    pub fn len(&self) -> usize {
        self.indexes.len()
    }

    pub fn is_empty(&self) -> bool {
        self.indexes.is_empty()
    }

    pub fn get(&self, id: IndexId) -> &Index {
        &self.indexes[id.0 as usize]
    }

    pub fn size_bytes(&self, id: IndexId) -> u64 {
        self.sizes[id.0 as usize]
    }

    pub fn iter(&self) -> impl Iterator<Item = (IndexId, &Index)> {
        self.indexes.iter().enumerate().map(|(i, ix)| (IndexId(i as u32), ix))
    }

    pub fn indexes(&self) -> &[Index] {
        &self.indexes
    }

    /// Keep only the first `n` candidates (the paper's `S_500`, `S_1000`
    /// subsets of `S_ALL`).
    pub fn truncate(&self, n: usize) -> CandidateSet {
        CandidateSet {
            indexes: self.indexes.iter().take(n).cloned().collect(),
            sizes: self.sizes.iter().take(n).copied().collect(),
        }
    }

    /// Pad with random single/two-column indexes up to `total` candidates
    /// (the paper's `S_L` with 10k indices).
    pub fn pad_random(&mut self, schema: &Schema, total: usize, seed: u64) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut guard = 0;
        while self.len() < total && guard < total * 50 {
            guard += 1;
            let t = &schema.tables()[rng.gen_range(0..schema.n_tables())];
            let nc = t.columns.len() as u32;
            let mut key = vec![ColumnId(rng.gen_range(0..nc))];
            if rng.gen_bool(0.5) {
                let extra = ColumnId(rng.gen_range(0..nc));
                if !key.contains(&extra) {
                    key.push(extra);
                }
            }
            self.insert(schema, Index::secondary(t.id, key));
        }
    }
}

impl CGen {
    pub fn new() -> Self {
        Self::default()
    }

    /// Generate the union of per-query candidates for a workload.
    ///
    /// Candidate enumeration only looks at the structural shell of each
    /// statement (tables, sargable columns and their comparison shapes, join
    /// edges, interesting orders, projections) — exactly what
    /// [`cophy_workload::features::TemplateKey`] captures with constants
    /// erased.  Statements sharing a template therefore propose identical
    /// candidates, and the expensive per-query expansion runs once per
    /// *template* rather than once per statement.  The resulting
    /// [`CandidateSet`] is byte-identical to the naive per-statement loop:
    /// the first occurrence of a template inserts all of its candidates in
    /// order, and repeats would only re-insert duplicates that
    /// [`CandidateSet::insert`] drops anyway.
    pub fn generate(&self, schema: &Schema, w: &Workload) -> CandidateSet {
        self.generate_with_stats(schema, w).0
    }

    /// [`Self::generate`] plus the number of per-query expansions actually
    /// performed (== number of distinct statement templates in `w`).
    pub fn generate_with_stats(&self, schema: &Schema, w: &Workload) -> (CandidateSet, usize) {
        let mut set = CandidateSet::new();
        let mut seen = HashSet::new();
        let mut expansions = 0usize;
        for (_, stmt, _) in w.iter() {
            if seen.insert(cophy_workload::features::template_key(stmt)) {
                self.per_query(schema, stmt.read_shell(), &mut set);
                expansions += 1;
            }
        }
        (set, expansions)
    }

    /// Candidates proposed by one query.
    pub fn per_query(&self, schema: &Schema, q: &Query, out: &mut CandidateSet) {
        for &t in &q.tables {
            let eq_cols = q.eq_columns_on(t);
            let range_cols: Vec<ColumnId> =
                q.predicates_on(t).filter(|p| !p.is_eq()).map(|p| p.column.column).collect();
            let join_cols: Vec<ColumnId> =
                q.joins_on(t).filter_map(|j| j.side(t)).map(|(l, _)| l.column).collect();
            let group_cols: Vec<ColumnId> =
                q.group_by.iter().filter(|c| c.table == t).map(|c| c.column).collect();
            let order_cols: Vec<ColumnId> =
                q.order_by.iter().take_while(|c| c.table == t).map(|c| c.column).collect();
            let used = q.columns_used_on(t);

            // 1. Single-column candidates on every interesting column.
            for c in eq_cols
                .iter()
                .chain(range_cols.iter())
                .chain(join_cols.iter())
                .chain(group_cols.iter())
                .chain(order_cols.iter())
            {
                out.insert(schema, Index::secondary(t, vec![*c]));
            }

            // 2. Equality prefix (+ range column).
            if !eq_cols.is_empty() {
                let key = self.clip(eq_cols.clone());
                out.insert(schema, Index::secondary(t, key.clone()));
                if let Some(r) = range_cols.first() {
                    let mut k2 = key.clone();
                    if !k2.contains(r) {
                        k2.push(*r);
                        out.insert(schema, Index::secondary(t, self.clip(k2)));
                    }
                }
            }

            // 3. Order-delivering composites: eq prefix + order/group columns.
            for target in [&order_cols, &group_cols] {
                if target.is_empty() {
                    continue;
                }
                let mut key = eq_cols.clone();
                for c in target {
                    if !key.contains(c) {
                        key.push(*c);
                    }
                }
                let key = self.clip(key);
                out.insert(schema, Index::secondary(t, key.clone()));
                // covering variant
                if self.max_include_columns > 0 {
                    let include: Vec<ColumnId> = used
                        .iter()
                        .filter(|c| !key.contains(c))
                        .take(self.max_include_columns)
                        .copied()
                        .collect();
                    if !include.is_empty() {
                        out.insert(schema, Index::covering(t, key.clone(), include));
                    }
                }
            }

            // 4. Join-column composites (merge-join enablers), optionally
            //    covering.
            for jc in &join_cols {
                let mut key = vec![*jc];
                if let Some(e) = eq_cols.first() {
                    if !key.contains(e) {
                        key.push(*e);
                    }
                }
                let key = self.clip(key);
                out.insert(schema, Index::secondary(t, key.clone()));
                if self.max_include_columns > 0 {
                    let include: Vec<ColumnId> = used
                        .iter()
                        .filter(|c| !key.contains(c))
                        .take(self.max_include_columns)
                        .copied()
                        .collect();
                    if !include.is_empty() {
                        out.insert(schema, Index::covering(t, key, include));
                    }
                }
            }

            // 5. Range column + covering payload (index-only range scans).
            if let Some(r) = range_cols.first() {
                if self.max_include_columns > 0 {
                    let include: Vec<ColumnId> = used
                        .iter()
                        .filter(|c| c != &r)
                        .take(self.max_include_columns)
                        .copied()
                        .collect();
                    if !include.is_empty() {
                        out.insert(schema, Index::covering(t, vec![*r], include));
                    }
                }
            }

            // 6. Pairwise composites over all interesting columns, both
            //    orders — CGen deliberately over-generates (no pruning, §4);
            //    the paper reaches 1933 candidates on W_hom-1000.
            let mut interesting: Vec<ColumnId> = Vec::new();
            for c in eq_cols
                .iter()
                .chain(range_cols.iter())
                .chain(join_cols.iter())
                .chain(group_cols.iter())
                .chain(order_cols.iter())
            {
                if !interesting.contains(c) {
                    interesting.push(*c);
                }
            }
            for &a in &interesting {
                for &b in &interesting {
                    if a == b {
                        continue;
                    }
                    out.insert(schema, Index::secondary(t, vec![a, b]));
                }
            }
            // A handful of width-3 composites anchored on equality columns.
            if self.max_key_columns >= 3 {
                for &a in eq_cols.iter().take(2) {
                    for &b in &interesting {
                        for &c in &interesting {
                            if a != b && b != c && a != c {
                                out.insert(schema, Index::secondary(t, vec![a, b, c]));
                            }
                        }
                    }
                }
            }
        }
    }

    fn clip(&self, mut key: Vec<ColumnId>) -> Vec<ColumnId> {
        key.truncate(self.max_key_columns);
        key
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cophy_catalog::TpchGen;
    use cophy_workload::{HetGen, HomGen};

    #[test]
    fn generates_rich_candidate_set() {
        let s = TpchGen::default().schema();
        let w = HomGen::new(1).generate(&s, 100);
        let set = CGen::default().generate(&s, &w);
        // The paper reports 1933 candidates for W_hom 1000; a 100-query
        // prefix should already produce a few hundred.
        assert!(set.len() >= 100, "only {} candidates", set.len());
        // all candidates well-formed
        for (_, ix) in set.iter() {
            assert!(!ix.key.is_empty());
            assert!(ix.key.len() <= 3);
        }
    }

    #[test]
    fn dedup_across_queries() {
        let s = TpchGen::default().schema();
        let w = HomGen::new(2).generate(&s, 50);
        let set = CGen::default().generate(&s, &w);
        for (id_a, a) in set.iter() {
            for (id_b, b) in set.iter() {
                if id_a != id_b {
                    assert_ne!(a, b, "duplicate candidate");
                }
            }
        }
    }

    #[test]
    fn template_dedup_preserves_candidate_set() {
        let s = TpchGen::default().schema();
        // HomGen draws from a fixed template pool, so a 200-statement
        // workload repeats templates many times over.
        let w = HomGen::new(4).generate(&s, 200);
        let gen = CGen::default();

        // Naive per-statement loop (the pre-dedup behavior).
        let mut naive = CandidateSet::new();
        for (_, stmt, _) in w.iter() {
            gen.per_query(&s, stmt.read_shell(), &mut naive);
        }

        let (deduped, expansions) = gen.generate_with_stats(&s, &w);
        let distinct: std::collections::HashSet<_> =
            w.iter().map(|(_, stmt, _)| cophy_workload::template_key(stmt)).collect();
        assert_eq!(expansions, distinct.len());
        assert!(expansions < w.len(), "expected template repeats in W_hom");

        // Byte-identical: same candidates, same insertion order, same sizes.
        assert_eq!(deduped.len(), naive.len());
        for ((id_a, a), (id_b, b)) in deduped.iter().zip(naive.iter()) {
            assert_eq!(id_a, id_b);
            assert_eq!(a, b);
            assert_eq!(deduped.size_bytes(id_a), naive.size_bytes(id_b));
        }
    }

    #[test]
    fn truncate_and_pad() {
        let s = TpchGen::default().schema();
        let w = HetGen::new(3).generate(&s, 40);
        let set = CGen::default().generate(&s, &w);
        let small = set.truncate(10);
        assert_eq!(small.len(), 10);
        let mut padded = set.clone();
        padded.pad_random(&s, set.len() + 50, 9);
        assert_eq!(padded.len(), set.len() + 50);
        // existing candidates unchanged
        for (id, ix) in set.iter() {
            assert_eq!(padded.get(id), ix);
        }
    }

    #[test]
    fn sizes_cached() {
        let s = TpchGen::default().schema();
        let w = HomGen::new(4).generate(&s, 10);
        let set = CGen::default().generate(&s, &w);
        for (id, ix) in set.iter() {
            assert_eq!(set.size_bytes(id), ix.size_bytes(&s));
        }
    }

    #[test]
    fn covering_disabled_when_zero_includes() {
        let s = TpchGen::default().schema();
        let w = HomGen::new(5).generate(&s, 30);
        let gen = CGen { max_include_columns: 0, ..Default::default() };
        let set = gen.generate(&s, &w);
        assert!(set.iter().all(|(_, ix)| ix.include.is_empty()));
    }
}
