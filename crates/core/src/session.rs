//! Interactive tuning sessions (paper §4.2, Figure 6b).
//!
//! Index tuning is exploratory: the DBA nudges `S`, `W` or `C` and asks for a
//! revised recommendation.  Instead of rebuilding and re-solving from
//! scratch, a [`TuningSession`] keeps the INUM cache, the candidate set and
//! the solver's warm-start state (Lagrangian multipliers + last incumbent);
//! deltas extend the problem *in place* — new candidates append items with
//! fresh ids, new statements append blocks — so the multiplier coordinates of
//! the untouched parts remain valid and re-solves converge an order of
//! magnitude faster (the Figure 6b behavior).
//!
//! ## The interactive surface
//!
//! Beyond workload/candidate deltas, the session answers the DBA's variant
//! questions from the *same* model and caches:
//!
//! * [`TuningSession::sweep_storage`] — a K-point budget sweep solved as one
//!   **warm chain** over a single Theorem-1 BIP: each point mutates the
//!   storage row's RHS ([`ModelDelta::SetRhs`]) and re-solves from the
//!   previous point's root basis, incumbent and pseudo-costs
//!   ([`cophy_bip::ResolveContext`]), so K points cost one cold root plus
//!   K−1 dual re-solves instead of K cold tunes (the paper's Figure 10
//!   economics);
//! * [`TuningSession::pin_index`] / [`TuningSession::ban_index`] — force an
//!   index into or out of every subsequent answer by fixing its `z`
//!   variable ([`ModelDelta::FixVar`]), a bound pinch the warm re-solve
//!   absorbs in a handful of dual pivots;
//! * [`TuningSession::what_if`] — cost an explicit configuration **entirely
//!   from the INUM cache**: zero optimizer what-if calls, zero solver work.
//!
//! Every solve streams through the unified [`SolveProgress`] contract.

use std::sync::Arc;
use std::time::{Duration, Instant};

use cophy_bip::{
    BranchBound, CancelToken, DeltaModel, LagrangianSolver, MipResult, MipStatus, ModelDelta,
    ResolveContext, SolveOptions, SolveProgress, WarmStart,
};
use cophy_catalog::{Configuration, Index};
use cophy_compress::{Absorption, CompressedWorkload};
use cophy_inum::{Inum, InumCache};
use cophy_workload::{QueryId, Statement, Workload, WorkloadSource};

use crate::bipgen::BipMapping;
use crate::cgen::CandidateSet;
use crate::constraints::ConstraintSet;
use crate::solver::{selection_to_config, CoPhy, DegradationReport, Recommendation, SolveStats};

/// One point of a [`TuningSession::sweep_storage`] budget sweep.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    pub budget_bytes: u64,
    /// INUM-estimated workload cost under this point's recommendation.
    pub objective: f64,
    /// Solver lower bound at this point.
    pub bound: f64,
    /// Relative optimality gap at termination.
    pub gap: f64,
    pub configuration: Configuration,
    /// Branch-and-bound nodes spent on this point.
    pub nodes: usize,
    /// Simplex pivots spent on this point (root + node LPs; the warm chain
    /// drives this down for every point after the first).
    pub pivots: usize,
    pub solve_time: Duration,
}

/// A [`TuningSession::what_if`] answer, computed entirely from the session's
/// INUM cache — no optimizer what-if calls, no solver work.
#[derive(Debug, Clone)]
pub struct WhatIfAnswer {
    /// INUM-estimated workload cost under the probed configuration.
    pub cost: f64,
    /// Cost under the empty configuration (same cache).
    pub baseline_cost: f64,
    /// Total size of the probed configuration.
    pub size_bytes: u64,
    /// `Some(reason)` when the configuration violates the session's hard
    /// constraints (the answer is still costed).
    pub constraint_violation: Option<String>,
}

impl WhatIfAnswer {
    /// Estimated improvement `1 − cost/baseline` of the probed configuration.
    pub fn improvement(&self) -> f64 {
        if self.baseline_cost <= 0.0 {
            return 0.0;
        }
        1.0 - self.cost / self.baseline_cost
    }
}

/// The session's interactive BIP: the Theorem-1 model under mutation plus
/// the warm re-solve state.  Built lazily on the first interactive call and
/// dropped whenever a structural delta (new candidates, new statements, new
/// constraint set) changes the variable layout.
#[derive(Debug)]
struct InteractiveState {
    dm: DeltaModel,
    mapping: BipMapping,
    /// `Σ_q f_q c_q`, the fixed update-base cost outside the model.
    fixed_cost: f64,
    ctx: ResolveContext,
}

/// An open tuning session.
#[derive(Debug)]
pub struct TuningSession<'o, 'c> {
    cophy: &'c CoPhy<'o>,
    /// The shared INUM cost service.  Sessions do not own the template
    /// cache: [`TuningSession::cache`] hands the `Arc` out, and
    /// [`crate::CoPhy::try_session_shared`] opens further sessions over it —
    /// concurrent readers, writes serialized on the statement-delta path.
    prepared: Arc<InumCache>,
    candidates: CandidateSet,
    constraints: ConstraintSet,
    warm: Option<WarmStart>,
    /// The clustering state when [`crate::CoPhyOptions::compression`] is on:
    /// statement deltas route through incremental re-clustering
    /// ([`CompressedWorkload::absorb`]) instead of forcing a new INUM
    /// preparation per nudge.
    compressed: Option<CompressedWorkload>,
    /// The interactive BIP + warm re-solve state (budget sweeps, pin/ban).
    interactive: Option<InteractiveState>,
    /// Sticky pin (`true`) / ban (`false`) fixings, keyed by index so they
    /// survive interactive-model rebuilds.
    fixings: Vec<(Index, bool)>,
    /// Cooperative cancellation armed on every solve this session runs
    /// (B&B re-solves and Lagrangian recommends alike); `None` = never
    /// cancelled.  The `cophy-server` daemon fires it when the requesting
    /// client disconnects.
    cancel: Option<CancelToken>,
    /// Cumulative what-if calls spent on INUM preparation in this session.
    what_if_calls: u64,
    inum_time: Duration,
    /// Carried degradation from the opening INUM preparation when transient
    /// backend faults exhausted retries; attached to every recommendation
    /// this session produces (`None` = fault-free prep).
    degradation: Option<DegradationReport>,
}

impl<'o, 'c> TuningSession<'o, 'c> {
    /// Open a session: run CGen and INUM once (over cluster representatives
    /// when compression is enabled).  Panicking wrapper around
    /// [`TuningSession::try_open`], kept for the `CoPhy::session` facade.
    pub(crate) fn open(cophy: &'c CoPhy<'o>, w: &Workload, constraints: ConstraintSet) -> Self {
        Self::try_open(cophy, w, constraints).unwrap_or_else(|e| panic!("{e}"))
    }

    /// [`TuningSession::open`], surfacing invalid options (non-storage-only
    /// constraints, invalid compression ε) as recoverable errors — the same
    /// contract as `CoPhy::try_tune`.
    pub(crate) fn try_open(
        cophy: &'c CoPhy<'o>,
        w: &Workload,
        constraints: ConstraintSet,
    ) -> Result<Self, String> {
        if !constraints.is_storage_only() {
            return Err(
                "interactive sessions use the Lagrangian backend (storage-only constraints)".into(),
            );
        }
        cophy.options.compression.validate()?;
        let t0 = Instant::now();
        let before = cophy.optimizer().what_if_calls();
        let schema = cophy.optimizer().schema();
        let inum = Inum::with_retry(cophy.optimizer(), cophy.options.retry.clone());
        let policy = cophy.options.compression;
        let (prepared, faults, candidates, compressed) = if policy.is_off() {
            let (prepared, faults) =
                inum.try_prepare_workload_resilient(w, None).map_err(|e| e.to_string())?;
            (prepared, faults, cophy.options.cgen.generate(schema, w), None)
        } else {
            let cw = CompressedWorkload::compress(schema, w, policy);
            let (prepared, faults) = inum
                .try_prepare_compressed_resilient_parallel(&cw, None)
                .map_err(|e| e.to_string())?;
            let candidates = cophy.options.cgen.generate(schema, cw.representatives());
            (prepared, faults, candidates, Some(cw))
        };
        let degradation = DegradationReport::from_prep(
            schema,
            cophy.optimizer().cost_model(),
            &prepared,
            &faults,
        );
        cophy.enforce_coverage(&degradation)?;
        Ok(TuningSession {
            cophy,
            prepared: InumCache::new(prepared),
            candidates,
            constraints,
            warm: None,
            compressed,
            interactive: None,
            fixings: Vec::new(),
            cancel: None,
            what_if_calls: cophy.optimizer().what_if_calls() - before,
            inum_time: t0.elapsed(),
            degradation,
        })
    }

    /// Open a session over an **existing** shared INUM cache: zero CGen and
    /// zero INUM work — the expensive preparation is reused, and statement
    /// deltas made through any session over the cache are visible to all of
    /// them.  The caller supplies the candidate set (typically cloned from
    /// the session that built the cache).  Backs
    /// [`crate::CoPhy::try_session_shared`].
    pub(crate) fn try_open_shared(
        cophy: &'c CoPhy<'o>,
        cache: Arc<InumCache>,
        candidates: CandidateSet,
        constraints: ConstraintSet,
    ) -> Result<Self, String> {
        if !constraints.is_storage_only() {
            return Err(
                "interactive sessions use the Lagrangian backend (storage-only constraints)".into(),
            );
        }
        Ok(TuningSession {
            cophy,
            prepared: cache,
            candidates,
            constraints,
            warm: None,
            compressed: None,
            interactive: None,
            fixings: Vec::new(),
            cancel: None,
            what_if_calls: 0,
            inum_time: Duration::ZERO,
            degradation: None,
        })
    }

    /// Open a session by **streaming** a workload source in chunks, never
    /// materializing the full workload: with compression enabled (the
    /// intended large-|W| configuration) the session starts from an empty
    /// *streaming* clustering ([`CompressedWorkload::streaming`]) and
    /// absorbs each chunk incrementally — resident state is bounded by the
    /// representative count plus one chunk buffer, INUM prepares only the
    /// cluster-opening statements, and CGen runs only over them.  With
    /// compression off every statement is prepared individually (resident
    /// state is then the prepared workload itself, as on the batch path).
    ///
    /// Faults roll back per chunk: on error the chunks ingested before the
    /// failing one remain committed and the failing chunk is rolled back
    /// whole (see [`TuningSession::try_add_source`]).  Backs
    /// [`crate::CoPhy::try_session_streaming`] and
    /// [`crate::CoPhy::try_tune_source`].
    pub(crate) fn try_open_streaming(
        cophy: &'c CoPhy<'o>,
        source: &mut dyn WorkloadSource,
        chunk_size: usize,
        constraints: ConstraintSet,
    ) -> Result<Self, String> {
        if !constraints.is_storage_only() {
            return Err(
                "interactive sessions use the Lagrangian backend (storage-only constraints)".into(),
            );
        }
        let policy = cophy.options.compression;
        policy.validate()?;
        let mut session = TuningSession {
            cophy,
            prepared: InumCache::empty(),
            candidates: CandidateSet::default(),
            constraints,
            warm: None,
            compressed: (!policy.is_off()).then(|| CompressedWorkload::streaming(policy)),
            interactive: None,
            fixings: Vec::new(),
            cancel: None,
            what_if_calls: 0,
            inum_time: Duration::ZERO,
            degradation: None,
        };
        session.try_add_source(source, chunk_size)?;
        Ok(session)
    }

    /// Arm (or disarm) cooperative cancellation: every subsequent solve —
    /// warm Lagrangian recommends and interactive B&B re-solves alike —
    /// observes the token between nodes/iterations and stops with
    /// `TimeLimit` semantics once it fires, keeping its best incumbent.
    pub fn set_cancel(&mut self, token: Option<CancelToken>) {
        self.cancel = token;
    }

    /// The session's hard constraints.
    pub fn constraints(&self) -> &ConstraintSet {
        &self.constraints
    }

    /// The degradation report from this session's opening INUM preparation,
    /// when transient backend faults exhausted their retries (`None` for a
    /// fault-free prep and for shared-cache sessions, which do no prep).
    pub fn degradation(&self) -> Option<&DegradationReport> {
        self.degradation.as_ref()
    }

    /// Rough bytes of *private* (non-shared) session state: candidates,
    /// the interactive BIP under mutation, and the Lagrangian warm-start
    /// vectors.  The shared INUM cache is excluded — it outlives any one
    /// session.  This is the metric the `cophy-server` LRU evicts on: an
    /// evicted session drops exactly this state and rebuilds it from the
    /// retained workload handle + sticky fixings on the next touch.
    pub fn approx_state_bytes(&self) -> usize {
        use std::mem::size_of;
        let mut bytes = self.candidates.len() * (size_of::<Index>() + 16);
        if let Some(st) = &self.interactive {
            let model = st.dm.model();
            let nnz: usize = model.constraints().iter().map(|c| c.expr.terms.len()).sum();
            bytes += model.n_vars() * 24 + model.n_constraints() * 48 + nnz * 16;
            // ResolveContext holds a basis + pseudo-cost table ~ O(vars).
            bytes += model.n_vars() * 48;
        }
        if let Some(warm) = &self.warm {
            bytes += warm.multipliers.len() * 48 + warm.selection.len();
        }
        bytes
    }

    /// The session's shared INUM cache handle.  Clones are cheap; pass one
    /// to [`crate::CoPhy::try_session_shared`] to open further sessions (or
    /// ad-hoc readers) over the same prepared workload.
    pub fn cache(&self) -> Arc<InumCache> {
        Arc::clone(&self.prepared)
    }

    pub fn candidates(&self) -> &CandidateSet {
        &self.candidates
    }

    /// Number of statements the session represents (original statements,
    /// not cluster representatives).
    pub fn n_statements(&self) -> usize {
        self.compressed.as_ref().map_or(self.prepared.len(), |c| c.n_original())
    }

    /// Number of INUM-prepared representatives (equals
    /// [`TuningSession::n_statements`] when compression is off).
    pub fn n_representatives(&self) -> usize {
        self.prepared.len()
    }

    /// Add DBA-curated candidate indexes (`S_DBA`); ids of existing
    /// candidates are stable, so the warm state stays valid.  The
    /// interactive BIP (if built) is dropped: its variable layout grows, and
    /// the next interactive answer rebuilds it with the new `z` columns.
    pub fn add_candidates(&mut self, extra: impl IntoIterator<Item = Index>) {
        self.candidates.extend(self.cophy.optimizer().schema(), extra);
        self.interactive = None;
    }

    /// Replace the storage budget (must remain storage-only).  When the
    /// interactive BIP is live, the new budget lands as a `SetRhs` delta —
    /// basis, incumbent and pseudo-costs all survive.
    pub fn set_constraints(&mut self, constraints: ConstraintSet) {
        assert!(constraints.is_storage_only());
        match (&mut self.interactive, constraints.storage_budget()) {
            (Some(st), Some(budget)) if st.mapping.storage_row.is_some() => {
                let row = st.mapping.storage_row.expect("checked");
                st.dm.apply(ModelDelta::SetRhs { row, rhs: budget as f64 });
            }
            (st, _) => *st = None,
        }
        self.constraints = constraints;
    }

    /// Append statements to the workload (new blocks; old block coordinates
    /// stay stable).  CGen runs over the genuinely new statements and
    /// extends the candidate set in place — existing candidate ids are
    /// stable, so the warm state remains valid while the new statements can
    /// actually be served by indexes.
    ///
    /// When compression is on, every delta routes through incremental
    /// re-clustering: statements that land in an existing cluster only bump
    /// their representative's weight — **zero** new what-if calls and no
    /// CGen work — and only genuinely novel statements open a cluster and
    /// pay an INUM preparation.
    pub fn add_statements(&mut self, w: &Workload) {
        self.try_add_statements(w).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`TuningSession::add_statements`]: probe failures (replay
    /// misses, exhausted what-if quotas) surface as recoverable errors.  On
    /// error the delta is rolled back whole — the cache, the clustering
    /// state and the candidate set are exactly as before the call — so a
    /// quota-rejected tenant can retry later without corrupting sessions
    /// that share the cache.  (Probes spent before the failure remain
    /// accounted against the backend; they were really issued.)
    ///
    /// This is a thin shim over the chunked [`TuningSession::try_add_source`]
    /// path: the workload is ingested as one chunk, which makes the
    /// per-chunk rollback whole-delta rollback.
    pub fn try_add_statements(&mut self, w: &Workload) -> Result<(), String> {
        self.try_add_source(&mut w.source(), w.len().max(1))
    }

    /// Stream statements into the session from a [`WorkloadSource`] in
    /// chunks of `chunk_size` (clamped to ≥ 1): the redesigned ingestion
    /// path behind [`TuningSession::add_statements`] and the server's
    /// workload deltas.  Only one chunk is resident at a time, so a
    /// generator- or file-backed source ingests an arbitrarily large
    /// workload without materializing it; under compression each chunk
    /// routes through incremental re-clustering and only cluster-opening
    /// statements pay INUM preparation and CGen.
    ///
    /// Faults roll back **per chunk**: a failing chunk is undone whole
    /// (cache, clustering state and candidates exactly as before it), but
    /// chunks committed earlier stay — the session remains consistent and
    /// the caller may retry the remainder of the stream later.
    pub fn try_add_source(
        &mut self,
        source: &mut dyn WorkloadSource,
        chunk_size: usize,
    ) -> Result<(), String> {
        self.interactive = None; // the block layout grows; rebuilt on demand
        let chunk_size = chunk_size.max(1);
        let before = self.cophy.optimizer().what_if_calls();
        let t0 = Instant::now();
        let mut buf: Vec<(Statement, f64)> = Vec::new();
        let mut result = Ok(());
        loop {
            buf.clear();
            if source.next_chunk(chunk_size, &mut buf) == 0 {
                break;
            }
            if let Err(e) = self.try_add_chunk(&buf) {
                result = Err(e.to_string());
                break;
            }
        }
        let spent = self.cophy.optimizer().what_if_calls() - before;
        self.prepared.write(|pw| pw.what_if_calls += spent);
        self.what_if_calls += spent;
        self.inum_time += t0.elapsed();
        result
    }

    /// Ingest one chunk of weighted statements, with chunk-granular
    /// rollback on probe failure (the shared machinery behind both
    /// ingestion surfaces above).
    fn try_add_chunk(
        &mut self,
        chunk: &[(Statement, f64)],
    ) -> Result<(), cophy_optimizer::BackendError> {
        let schema = self.cophy.optimizer().schema();
        let inum = Inum::new(self.cophy.optimizer());
        let cache = Arc::clone(&self.prepared);
        let mut failure: Option<cophy_optimizer::BackendError> = None;
        if let Some(cw) = self.compressed.as_mut() {
            // Snapshot for whole-chunk rollback: absorption mutates the
            // clustering incrementally and cannot be undone per statement.
            let cw_snapshot = cw.clone();
            // Only the cluster-opening statements are new to CGen.
            let mut novel = Workload::new();
            cache.write(|pw| {
                let n_before = pw.queries.len();
                let weights_before: Vec<f64> = pw.queries.iter().map(|pq| pq.weight).collect();
                for (stmt, weight) in chunk {
                    match cw.absorb(schema, stmt, *weight) {
                        Absorption::Merged(rep) => {
                            pw.queries[rep.0 as usize].weight += weight;
                        }
                        Absorption::NewRepresentative(rep) => {
                            debug_assert_eq!(rep.0 as usize, pw.queries.len());
                            match inum.try_prepare_statement(rep, stmt, *weight) {
                                Ok(pq) => pw.queries.push(pq),
                                Err(e) => {
                                    failure = Some(e);
                                    break;
                                }
                            }
                            novel.push_weighted(stmt.clone(), *weight);
                        }
                    }
                }
                if failure.is_some() {
                    pw.queries.truncate(n_before);
                    for (pq, w0) in pw.queries.iter_mut().zip(&weights_before) {
                        pq.weight = *w0;
                    }
                }
            });
            if failure.is_some() {
                *cw = cw_snapshot;
            } else if !novel.is_empty() {
                let extra = self.cophy.options.cgen.generate(schema, &novel);
                self.candidates.extend(schema, extra.iter().map(|(_, ix)| ix.clone()));
            }
        } else {
            cache.write(|pw| {
                let offset = pw.queries.len() as u32;
                let n_before = pw.queries.len();
                for (i, (stmt, weight)) in chunk.iter().enumerate() {
                    match inum.try_prepare_statement(QueryId(offset + i as u32), stmt, *weight) {
                        Ok(pq) => pw.queries.push(pq),
                        Err(e) => {
                            failure = Some(e);
                            pw.queries.truncate(n_before);
                            break;
                        }
                    }
                }
            });
            if failure.is_none() {
                let mut novel = Workload::new();
                for (stmt, weight) in chunk {
                    novel.push_weighted(stmt.clone(), *weight);
                }
                let extra = self.cophy.options.cgen.generate(schema, &novel);
                self.candidates.extend(schema, extra.iter().map(|(_, ix)| ix.clone()));
            }
        }
        failure.map_or(Ok(()), Err)
    }

    // -- the interactive surface (paper §4.2) -------------------------------

    /// Lazily build (or fetch) the interactive Theorem-1 BIP, re-applying
    /// the session's sticky pin/ban fixings to the fresh variable layout.
    fn interactive_state(&mut self) -> &mut InteractiveState {
        if self.interactive.is_none() {
            let schema = self.cophy.optimizer().schema();
            let cm = self.cophy.optimizer().cost_model();
            let (model, mapping, fixed_cost) = self.prepared.read(|pw| {
                let (model, mapping) = self.cophy.options.bipgen.model(
                    schema,
                    cm,
                    pw,
                    &self.candidates,
                    &self.constraints,
                );
                let fixed_cost: f64 =
                    pw.queries.iter().map(|pq| pq.weight * pq.fixed_update_cost).sum();
                (model, mapping, fixed_cost)
            });
            let mut dm = DeltaModel::new(model);
            for (ix, value) in &self.fixings {
                if let Some(pos) = candidate_position(&self.candidates, ix) {
                    dm.apply(ModelDelta::FixVar { var: mapping.z[pos], value: *value });
                }
            }
            self.interactive =
                Some(InteractiveState { dm, mapping, fixed_cost, ctx: ResolveContext::new() });
        }
        self.interactive.as_mut().expect("just built")
    }

    /// One warm re-solve of the interactive BIP, optionally retargeting the
    /// storage row first.  The solver restarts from the previous answer's
    /// root basis, incumbent and pseudo-cost table; `known_bound` (if any)
    /// is a caller-proven lower bound on this solve's binary optimum.
    fn interactive_solve(
        &mut self,
        budget_bytes: Option<u64>,
        known_bound: Option<f64>,
        on_progress: &mut dyn FnMut(&SolveProgress),
    ) -> MipResult {
        let solve_budget = self.cophy.options.budget;
        let st = self.interactive_state();
        if let (Some(row), Some(b)) = (st.mapping.storage_row, budget_bytes) {
            st.dm.apply(ModelDelta::SetRhs { row, rhs: b as f64 });
        }
        let opts = SolveOptions {
            budget: solve_budget,
            known_bound,
            cancel: self.cancel.clone(),
            ..Default::default()
        };
        let st = self.interactive.as_mut().expect("state live");
        BranchBound::new().resolve_with_progress(&st.dm, &opts, &mut st.ctx, |p, _| on_progress(p))
    }

    /// Answer a K-point storage-budget sweep (paper Figure 10) as **one warm
    /// chain**: every point mutates the storage row's RHS in place and
    /// re-solves from the previous point's root basis, incumbent and
    /// pseudo-costs, so the chain costs one cold root LP plus K−1 dual
    /// re-solves instead of K independent tunes.
    ///
    /// Panics when a point is infeasible (pinned indexes exceeding that
    /// budget); a plain storage sweep without pins is always feasible.
    pub fn sweep_storage(&mut self, budgets: &[u64]) -> Vec<SweepPoint> {
        self.sweep_storage_with_progress(budgets, |_, _| {})
    }

    /// [`TuningSession::sweep_storage`] with the unified anytime stream:
    /// `on_progress(point_index, event)` fires for every incumbent or bound
    /// improvement of every sweep point.
    pub fn sweep_storage_with_progress(
        &mut self,
        budgets: &[u64],
        on_progress: impl FnMut(usize, &SolveProgress),
    ) -> Vec<SweepPoint> {
        self.try_sweep_storage_with_progress(budgets, on_progress).unwrap_or_else(|e| panic!("{e}"))
    }

    /// [`TuningSession::sweep_storage_with_progress`] surfacing an
    /// infeasible point (pinned indexes exceeding that budget) as a
    /// recoverable error instead of a panic — what the daemon serves, so a
    /// DBA's over-pinned sweep is an `err` reply rather than a dropped
    /// session.
    pub fn try_sweep_storage_with_progress(
        &mut self,
        budgets: &[u64],
        mut on_progress: impl FnMut(usize, &SolveProgress),
    ) -> Result<Vec<SweepPoint>, String> {
        let mut points = Vec::with_capacity(budgets.len());
        // Monotone-bound carry: tightening the storage budget can only raise
        // the optimum, so a point's proven lower bound remains valid for
        // every *tighter* successor — the next solve starts with it instead
        // of re-proving from scratch (the chain's second warm-start lever,
        // next to the root basis).
        let mut prev: Option<(u64, f64)> = None;
        for (i, &budget) in budgets.iter().enumerate() {
            let carried = prev.and_then(|(pb, b)| (budget <= pb && b.is_finite()).then_some(b));
            let t0 = Instant::now();
            let r = self.interactive_solve(Some(budget), carried, &mut |p| on_progress(i, p));
            if r.status == MipStatus::Infeasible || r.x.is_empty() {
                return Err(format!(
                    "storage sweep point {budget} is infeasible \
                     (pinned indexes may exceed this budget)"
                ));
            }
            let st = self.interactive.as_ref().expect("state live after a solve");
            prev = Some((budget, r.bound));
            points.push(SweepPoint {
                budget_bytes: budget,
                objective: r.objective + st.fixed_cost,
                bound: r.bound + st.fixed_cost,
                gap: r.gap,
                configuration: st.mapping.extract_configuration(&r.x, &self.candidates),
                nodes: r.nodes,
                pivots: r.pivots,
                solve_time: t0.elapsed(),
            });
        }
        Ok(points)
    }

    /// Force `ix` into every subsequent answer (`z = 1`).  An index CGen
    /// never proposed is adopted as a DBA candidate first.  The fixing is a
    /// bound pinch, so the warm re-solve state survives.
    pub fn pin_index(&mut self, ix: &Index) {
        self.fix_index(ix.clone(), true);
    }

    /// Exclude `ix` from every subsequent answer (`z = 0`).  Banning an
    /// index outside the candidate set holds vacuously.
    pub fn ban_index(&mut self, ix: &Index) {
        self.fix_index(ix.clone(), false);
    }

    /// Remove a pin/ban previously placed on `ix`.
    pub fn unfix_index(&mut self, ix: &Index) {
        self.fixings.retain(|(i, _)| i != ix);
        if let Some(pos) = candidate_position(&self.candidates, ix) {
            if let Some(st) = self.interactive.as_mut() {
                st.dm.apply(ModelDelta::FreeVar { var: st.mapping.z[pos] });
            }
        }
    }

    /// Current pin/ban fixings `(index, pinned?)`.
    pub fn fixings(&self) -> &[(Index, bool)] {
        &self.fixings
    }

    fn fix_index(&mut self, ix: Index, value: bool) {
        self.fixings.retain(|(i, _)| *i != ix);
        match candidate_position(&self.candidates, &ix) {
            Some(pos) => {
                if let Some(st) = self.interactive.as_mut() {
                    st.dm.apply(ModelDelta::FixVar { var: st.mapping.z[pos], value });
                }
            }
            // Pinning an unknown index adopts it (interactive model is
            // rebuilt with the new z column on the next solve).
            None if value => self.add_candidates([ix.clone()]),
            None => {}
        }
        self.fixings.push((ix, value));
    }

    /// Export the session's interactive Theorem-1 BIP as free-format MPS
    /// text ([`cophy_bip::mps`]) — the portable hand-off for cross-checking
    /// the built-in engines against an external solver.  The model is built
    /// lazily, so the export reflects the current statements, candidates and
    /// constraints (pin/ban fixings are variable bounds, not rows, and are
    /// listed separately by [`TuningSession::fixings`]).
    pub fn export_mps(&mut self) -> String {
        let st = self.interactive_state();
        cophy_bip::write_mps(st.dm.model(), "cophy_bip")
    }

    /// Cost an explicit configuration against the session workload,
    /// **entirely from the INUM cache**: no optimizer what-if calls, no
    /// solver work — the paper's "what does this configuration cost?"
    /// interaction at memo-lookup price.
    pub fn what_if(&self, cfg: &Configuration) -> WhatIfAnswer {
        let schema = self.cophy.optimizer().schema();
        let cm = self.cophy.optimizer().cost_model();
        self.prepared.read(|pw| WhatIfAnswer {
            cost: pw.cost(schema, cm, cfg),
            baseline_cost: pw.cost(schema, cm, &Configuration::empty()),
            size_bytes: cfg.size_bytes(schema),
            constraint_violation: self.constraints.check_configuration(schema, cfg).err(),
        })
    }

    /// The per-candidate pin/ban vector, or `None` when no fixing touches a
    /// known candidate (bans of never-proposed indexes hold vacuously).
    fn fixing_vector(&self) -> Option<Vec<Option<bool>>> {
        if self.fixings.is_empty() {
            return None;
        }
        let mut fixed = vec![None; self.candidates.len()];
        let mut any = false;
        for (ix, value) in &self.fixings {
            if let Some(pos) = candidate_position(&self.candidates, ix) {
                fixed[pos] = Some(*value);
                any = true;
            }
        }
        any.then_some(fixed)
    }

    /// Compute (or re-compute) the recommendation, warm-starting from the
    /// previous solve.
    pub fn recommend(&mut self) -> Recommendation {
        self.recommend_with_progress(|_| {})
    }

    /// [`TuningSession::recommend`] with streaming incumbents: every
    /// improvement the warm-started solver finds is surfaced immediately as
    /// a [`SolveProgress`] event, so an interactive caller can show the
    /// refinement loop converging instead of waiting for the final answer
    /// (the paper's §4.2 continuous-feedback contract).
    pub fn recommend_with_progress(
        &mut self,
        mut on_progress: impl FnMut(&SolveProgress),
    ) -> Recommendation {
        let schema = self.cophy.optimizer().schema();
        let cm = self.cophy.optimizer().cost_model();
        let tb = Instant::now();
        let tp = self.prepared.read(|pw| {
            self.cophy.options.bipgen.block_problem(
                schema,
                cm,
                pw,
                &self.candidates,
                &self.constraints,
            )
        });
        // Pin/ban fixings fold into the block form itself (fallback
        // absorption + budget pre-charge) instead of detouring through the
        // B&B backend: item ids stay stable, so the warm multiplier chain
        // keeps flowing across fixed and unfixed recommends alike.
        let reduction = self.fixing_vector().map(|fixed| {
            tp.block
                .with_fixings(&fixed)
                .expect("pinned indexes are infeasible under the session constraints")
        });
        let block = reduction.as_ref().map_or(&tp.block, |fx| &fx.problem);
        let pinned_cost = reduction.as_ref().map_or(0.0, |fx| fx.pinned_cost);
        let build_time = tb.elapsed();

        let ts = Instant::now();
        let solver = LagrangianSolver {
            budget: self.cophy.options.budget,
            cancel: self.cancel.clone(),
            ..Default::default()
        };
        let (r, warm) =
            solver.solve_warm_with_progress(block, self.warm.as_ref(), |p, _| on_progress(p));
        let solve_time = ts.elapsed();
        self.warm = Some(warm);

        let mut selected = r.selected.clone();
        if let Some(fx) = &reduction {
            fx.apply_to_selection(&mut selected);
        }
        let configuration = selection_to_config(&selected, &self.candidates);
        let baseline_cost =
            self.prepared.read(|pw| pw.cost(schema, cm, &cophy_catalog::Configuration::empty()));
        Recommendation {
            configuration,
            objective: r.objective + pinned_cost + tp.fixed_cost,
            baseline_cost,
            bound: r.bound + pinned_cost + tp.fixed_cost,
            gap: r.gap,
            trace: r.trace,
            compression: self.compressed.as_ref().map(|c| c.summary()),
            degradation: self.degradation.clone(),
            stats: SolveStats {
                inum_time: std::mem::take(&mut self.inum_time),
                build_time,
                solve_time,
                what_if_calls: std::mem::take(&mut self.what_if_calls),
                n_candidates: self.candidates.len(),
                n_variables: tp.block.n_choices() + tp.block.n_items,
            },
        }
    }
}

/// Position of `ix` in the candidate set, if present.
fn candidate_position(candidates: &CandidateSet, ix: &Index) -> Option<usize> {
    candidates.iter().find(|(_, c)| *c == ix).map(|(id, _)| id.0 as usize)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::CoPhyOptions;
    use cophy_catalog::{ColumnId, TpchGen};
    use cophy_optimizer::{SystemProfile, WhatIfOptimizer};
    use cophy_workload::HomGen;

    fn setup() -> WhatIfOptimizer {
        WhatIfOptimizer::new(TpchGen::default().schema(), SystemProfile::A)
    }

    #[test]
    fn session_recommend_then_retune_with_new_candidates() {
        let o = setup();
        let w = HomGen::new(31).generate(o.schema(), 20);
        let cophy = CoPhy::new(&o, CoPhyOptions::default());
        let mut session = cophy.session(&w, ConstraintSet::storage_fraction(o.schema(), 0.5));
        let r1 = session.recommend();
        assert!(r1.objective < r1.baseline_cost);

        // DBA adds hand-picked candidates; retune must not get worse.
        let li = o.schema().table_by_name("lineitem").unwrap().id;
        session.add_candidates([
            Index::secondary(li, vec![ColumnId(10), ColumnId(4)]),
            Index::secondary(li, vec![ColumnId(0), ColumnId(10)]),
        ]);
        let r2 = session.recommend();
        assert!(
            r2.objective <= r1.objective * 1.001 + 1e-6,
            "more candidates cannot hurt: {} vs {}",
            r2.objective,
            r1.objective
        );
    }

    #[test]
    fn retune_reuses_warm_state_and_is_fast() {
        let o = setup();
        let w = HomGen::new(32).generate(o.schema(), 30);
        let cophy = CoPhy::new(&o, CoPhyOptions::default());
        let mut session = cophy.session(&w, ConstraintSet::storage_fraction(o.schema(), 1.0));
        let r1 = session.recommend();
        let cold_solve = r1.stats.solve_time;
        // Small delta: a couple of random candidates.
        let ord = o.schema().table_by_name("orders").unwrap().id;
        session.add_candidates([Index::secondary(ord, vec![ColumnId(6), ColumnId(1)])]);
        let r2 = session.recommend();
        // Warm solve should not blow up; typically it is much faster. We
        // assert a loose factor to stay robust on shared CI machines.
        assert!(
            r2.stats.solve_time <= cold_solve * 3 + Duration::from_millis(50),
            "warm {:?} vs cold {:?}",
            r2.stats.solve_time,
            cold_solve
        );
        assert!(r2.objective <= r1.objective * 1.001 + 1e-6);
    }

    #[test]
    fn recommend_streams_incumbents() {
        let o = setup();
        let w = HomGen::new(36).generate(o.schema(), 20);
        let cophy = CoPhy::new(&o, CoPhyOptions::default());
        let mut session = cophy.session(&w, ConstraintSet::storage_fraction(o.schema(), 0.5));
        let mut events: Vec<SolveProgress> = Vec::new();
        let r = session.recommend_with_progress(|p| events.push(*p));
        assert!(!events.is_empty(), "the interactive loop must stream progress");
        let (mut prev_inc, mut prev_gap) = (f64::INFINITY, f64::INFINITY);
        for e in &events {
            assert!(e.incumbent <= prev_inc + 1e-9, "incumbents must only improve");
            assert!(e.gap <= prev_gap + 1e-12, "gap series must not regress");
            prev_inc = e.incumbent;
            prev_gap = e.gap;
        }
        // The stream converges onto the returned recommendation (the fixed
        // update-base cost is added on top of the solver objective).
        assert!(prev_inc <= r.objective + 1e-6);
        assert!((events.last().unwrap().gap - r.gap).abs() < 1e-9);
    }

    #[test]
    fn exported_mps_reimports_and_solves_to_the_native_objective() {
        let o = setup();
        let w = HomGen::new(38).generate(o.schema(), 5);
        // Lean candidate grammar keeps the exact B&B cross-check fast.
        let opts = CoPhyOptions {
            cgen: crate::cgen::CGen { max_key_columns: 2, max_include_columns: 0 },
            ..Default::default()
        };
        let cophy = CoPhy::new(&o, opts);
        let mut session = cophy.session(&w, ConstraintSet::storage_fraction(o.schema(), 0.5));
        let text = session.export_mps();
        let (cols, rows) = cophy_bip::lint_mps(&text).expect("export passes the format lint");
        assert!(rows > 0 && cols > 0, "the Theorem-1 BIP is non-trivial");

        // The re-import is lossless: re-exporting it reproduces every
        // non-comment line bit-for-bit (only the `* xj = name` comments
        // differ — the parsed model carries the sanitized names), so solving
        // the parsed model is solving exactly the model the text describes.
        let imported = cophy_bip::parse_mps(&text).expect("export re-imports");
        let payload =
            |s: &str| s.lines().filter(|l| !l.starts_with('*')).collect::<Vec<_>>().join("\n");
        assert_eq!(payload(&cophy_bip::write_mps(&imported, "cophy_bip")), payload(&text));

        // The native in-memory BIP and its MPS round trip solve to the same
        // objective within the engines' proven gap slack.
        let st = session.interactive_state();
        let solve_opts = SolveOptions::default();
        let native = BranchBound::new().solve(st.dm.model(), &solve_opts);
        let round = BranchBound::new().solve(&imported, &solve_opts);
        assert_eq!(native.status, round.status);
        let slack = (native.gap.max(round.gap) + 1e-9) * native.objective.abs().max(1.0);
        assert!(
            (native.objective - round.objective).abs() <= slack,
            "native {} vs re-imported {} (slack {slack})",
            native.objective,
            round.objective
        );
    }

    #[test]
    fn adding_statements_extends_blocks() {
        let o = setup();
        let w = HomGen::new(33).generate(o.schema(), 10);
        let cophy = CoPhy::new(&o, CoPhyOptions::default());
        let mut session = cophy.session(&w, ConstraintSet::storage_fraction(o.schema(), 1.0));
        let r1 = session.recommend();
        let more = HomGen::new(34).generate(o.schema(), 5);
        session.add_statements(&more);
        assert_eq!(session.n_statements(), 15);
        let r2 = session.recommend();
        // More statements → higher total workload cost.
        assert!(r2.objective > r1.objective);
        assert!(r2.baseline_cost > r1.baseline_cost);
    }

    #[test]
    fn streaming_session_matches_batch_session_bit_for_bit() {
        let o = setup();
        let w = HomGen::new(41).generate(o.schema(), 40);
        let opts = CoPhyOptions {
            compression: cophy_compress::CompressionPolicy::Lossless,
            ..Default::default()
        };
        let cophy = CoPhy::new(&o, opts);
        let constraints = ConstraintSet::storage_fraction(o.schema(), 0.5);
        let mut batch = cophy.try_session(&w, constraints.clone()).unwrap();
        let mut streamed = cophy.try_session_streaming(&mut w.source(), constraints).unwrap();
        assert_eq!(streamed.n_statements(), w.len());
        assert_eq!(streamed.n_representatives(), batch.n_representatives());
        // Lossless streaming clustering is bit-identical to the batch path,
        // so the Theorem-1 models coincide textually...
        assert_eq!(batch.export_mps(), streamed.export_mps());
        // ...and the solves coincide bit-for-bit.
        let rb = batch.recommend();
        let rs = streamed.recommend();
        assert_eq!(rb.objective.to_bits(), rs.objective.to_bits());
        assert_eq!(rb.configuration, rs.configuration);
    }

    #[test]
    fn chunked_ingestion_is_invariant_to_chunk_size() {
        let o = setup();
        let opts = CoPhyOptions {
            compression: cophy_compress::CompressionPolicy::default_epsilon(),
            ..Default::default()
        };
        let cophy = CoPhy::new(&o, opts);
        let constraints = ConstraintSet::storage_fraction(o.schema(), 0.5);
        let empty = Workload::new();
        let mut models: Vec<String> = Vec::new();
        for chunk in [1usize, 7, 64, 512] {
            let mut s =
                cophy.try_session_streaming(&mut empty.source(), constraints.clone()).unwrap();
            s.try_add_source(&mut HomGen::new(9).stream(o.schema(), 60), chunk).unwrap();
            assert_eq!(s.n_statements(), 60);
            models.push(s.export_mps());
        }
        assert!(models.windows(2).all(|p| p[0] == p[1]), "model must not depend on chunk size");
    }

    #[test]
    fn streaming_session_keeps_residency_at_representatives() {
        let o = setup();
        let opts = CoPhyOptions {
            compression: cophy_compress::CompressionPolicy::default_epsilon(),
            ..Default::default()
        };
        let cophy = CoPhy::new(&o, opts);
        let mut src = HomGen::new(2).stream(o.schema(), 400);
        let session = cophy
            .try_session_streaming(&mut src, ConstraintSet::storage_fraction(o.schema(), 0.5))
            .unwrap();
        assert_eq!(session.n_statements(), 400);
        // Only representatives are prepared/resident — the stream itself is
        // gone.  A homogeneous 400-statement stream must cluster hard.
        assert!(
            session.n_representatives() * 4 <= session.n_statements(),
            "homogeneous stream must cluster: {} representatives",
            session.n_representatives()
        );
    }

    #[test]
    fn compressed_session_absorbs_deltas_without_new_probes() {
        let o = setup();
        let w = HomGen::new(37).generate(o.schema(), 30);
        let opts = crate::CoPhyOptions {
            compression: cophy_compress::CompressionPolicy::default_epsilon(),
            ..Default::default()
        };
        let cophy = CoPhy::new(&o, opts);
        let mut session = cophy.session(&w, ConstraintSet::storage_fraction(o.schema(), 0.5));
        assert_eq!(session.n_statements(), 30);
        assert!(session.n_representatives() < 30, "W_hom must cluster");
        let r1 = session.recommend();
        assert_eq!(r1.compression.unwrap().n_original, 30);

        // Re-send part of the workload verbatim: pure weight bumps, zero
        // what-if calls, no new representatives.
        let reps_before = session.n_representatives();
        let calls_before = o.what_if_calls();
        session.add_statements(&w.truncate(10));
        assert_eq!(o.what_if_calls(), calls_before, "duplicates must not probe");
        assert_eq!(session.n_representatives(), reps_before);
        assert_eq!(session.n_statements(), 40);

        // The recommendation reflects the grown workload.
        let r2 = session.recommend();
        assert!(r2.baseline_cost > r1.baseline_cost);
        assert_eq!(r2.compression.unwrap().n_original, 40);

        // A genuinely novel statement pays exactly one preparation, and
        // CGen extends the candidate set so indexes can actually serve it.
        let ps = o.schema().table_by_name("partsupp").unwrap().id;
        let aq = o.schema().resolve("partsupp.ps_availqty").unwrap();
        let mut q = cophy_workload::Query::scan(ps);
        q.predicates.push(cophy_workload::Predicate::gt(aq, 100.0));
        let mut novel = Workload::new();
        novel.push(cophy_workload::Statement::Select(q));
        session.add_statements(&novel);
        assert!(o.what_if_calls() > calls_before, "novel statement must probe");
        assert_eq!(session.n_representatives(), reps_before + 1);
        assert!(
            session
                .candidates()
                .iter()
                .any(|(_, ix)| ix.table == ps && ix.key.first() == Some(&aq.column)),
            "candidate set must gain an index keyed on the novel predicate column"
        );
    }

    #[test]
    fn try_session_surfaces_invalid_options_as_errors() {
        let o = setup();
        let w = HomGen::new(38).generate(o.schema(), 5);
        let storage = ConstraintSet::storage_fraction(o.schema(), 1.0);
        let bad_eps = crate::CoPhyOptions {
            compression: cophy_compress::CompressionPolicy::Epsilon(-0.5),
            ..Default::default()
        };
        let err = CoPhy::new(&o, bad_eps).try_session(&w, storage.clone()).err().unwrap();
        assert!(err.contains("invalid compression ε"), "{err}");

        let li = o.schema().table_by_name("lineitem").unwrap().id;
        let rich = storage.with(crate::Constraint::IndexCount {
            filter: crate::IndexFilter::on_table(li),
            cmp: crate::Cmp::Le,
            value: 1,
        });
        let cophy = CoPhy::new(&o, crate::CoPhyOptions::default());
        assert!(cophy.try_session(&w, rich).is_err(), "rich constraints are not sessionable");
    }

    #[test]
    fn sweep_storage_is_one_warm_chain() {
        let o = setup();
        let w = HomGen::new(40).generate(o.schema(), 8);
        let cophy = CoPhy::new(&o, CoPhyOptions::default());
        let mut session = cophy.session(&w, ConstraintSet::storage_fraction(o.schema(), 1.0));
        let total = o.schema().data_bytes();
        // Loose → tight, the paper's sweep direction: every step pinches the
        // storage row and pays dual pivots from the previous basis.
        let budgets: Vec<u64> =
            [1.0, 0.4, 0.15, 0.05].iter().map(|m| (total as f64 * m) as u64).collect();
        let mut events = vec![0usize; budgets.len()];
        let points = session.sweep_storage_with_progress(&budgets, |i, _| events[i] += 1);
        assert_eq!(points.len(), budgets.len());
        for (p, &b) in points.iter().zip(&budgets) {
            assert!(
                p.configuration.size_bytes(o.schema()) <= b,
                "sweep point must respect its budget"
            );
            assert!(p.objective >= p.bound - 1e-6);
            assert!(p.gap.is_finite());
        }
        // Tighter budgets cannot cost less (modulo both points' gap slack).
        for pair in points.windows(2) {
            assert!(
                pair[1].objective >= pair[0].objective / 1.06 - 1e-6,
                "tightening the budget must not lower the cost: {} then {}",
                pair[0].objective,
                pair[1].objective
            );
        }
        assert!(events.iter().all(|&e| e > 0), "every sweep point must stream progress");
        // (The ≥3× pivot economy of the warm chain vs K cold tunes is gated
        // at release scale by the `fig10_interactive` bench bin and the
        // interactive integration tests.)
    }

    #[test]
    fn pin_and_ban_shape_the_recommendation() {
        let o = setup();
        let w = HomGen::new(41).generate(o.schema(), 8);
        let cophy = CoPhy::new(&o, CoPhyOptions::default());
        let mut session = cophy.session(&w, ConstraintSet::storage_fraction(o.schema(), 0.5));
        let r_free = session.recommend();
        assert!(!r_free.configuration.is_empty());

        let target = r_free.configuration.indexes()[0].clone();
        session.ban_index(&target);
        let r_ban = session.recommend();
        assert!(!r_ban.configuration.contains(&target), "banned index must stay out");
        assert!(
            session.constraints.check_configuration(o.schema(), &r_ban.configuration).is_ok(),
            "fixed solve must stay feasible"
        );
        assert!(
            r_ban.objective >= r_free.objective / 1.05 - 1e-6,
            "banning cannot beat the free optimum: {} vs {}",
            r_ban.objective,
            r_free.objective
        );

        session.unfix_index(&target);
        session.pin_index(&target);
        let r_pin = session.recommend();
        assert!(r_pin.configuration.contains(&target), "pinned index must be in");
        assert!(session.constraints.check_configuration(o.schema(), &r_pin.configuration).is_ok());

        // Pins survive a budget sweep; every point honors them.
        let total = o.schema().data_bytes();
        let budgets = [total / 2, total];
        for p in session.sweep_storage(&budgets) {
            assert!(p.configuration.contains(&target), "sweep must honor the pin");
        }
    }

    #[test]
    fn pinning_an_unknown_index_adopts_it() {
        let o = setup();
        let w = HomGen::new(43).generate(o.schema(), 6);
        let cophy = CoPhy::new(&o, CoPhyOptions::default());
        let mut session = cophy.session(&w, ConstraintSet::storage_fraction(o.schema(), 1.0));
        let ps = o.schema().table_by_name("partsupp").unwrap().id;
        let pet = Index::secondary(ps, vec![ColumnId(2), ColumnId(3)]);
        let before = session.candidates().len();
        session.pin_index(&pet);
        assert_eq!(session.candidates().len(), before + 1, "pet index adopted as candidate");
        let r = session.recommend();
        assert!(r.configuration.contains(&pet));
    }

    #[test]
    fn what_if_is_free_of_optimizer_calls() {
        let o = setup();
        let w = HomGen::new(42).generate(o.schema(), 10);
        let cophy = CoPhy::new(&o, CoPhyOptions::default());
        let mut session = cophy.session(&w, ConstraintSet::storage_fraction(o.schema(), 0.5));
        let rec = session.recommend();
        let calls = o.what_if_calls();
        let ans = session.what_if(&rec.configuration);
        let empty = session.what_if(&cophy_catalog::Configuration::empty());
        assert_eq!(o.what_if_calls(), calls, "what_if must never touch the optimizer");
        // The cache-costed answer is the recommendation's own objective.
        assert!(
            (ans.cost - rec.objective).abs() / rec.objective < 1e-6,
            "what_if {} vs recommendation {}",
            ans.cost,
            rec.objective
        );
        assert!((empty.cost - rec.baseline_cost).abs() / rec.baseline_cost < 1e-9);
        assert!(ans.improvement() > 0.0);
        assert!(ans.constraint_violation.is_none());
        assert!(ans.size_bytes > 0);
        // An over-budget probe is flagged but still costed.
        let everything = cophy_catalog::Configuration::from_indexes(
            session.candidates().iter().map(|(_, ix)| ix.clone()),
        );
        if everything.size_bytes(o.schema()) > o.schema().data_bytes() / 2 {
            let over = session.what_if(&everything);
            assert!(over.constraint_violation.is_some());
            assert!(over.cost.is_finite());
        }
        assert_eq!(o.what_if_calls(), calls);
    }

    #[test]
    fn sessions_share_one_inum_cache() {
        let o = setup();
        let w = HomGen::new(44).generate(o.schema(), 8);
        let cophy = CoPhy::new(&o, CoPhyOptions::default());
        let session = cophy.session(&w, ConstraintSet::storage_fraction(o.schema(), 0.5));
        let cache = session.cache();
        let calls = o.what_if_calls();
        let mut twin = cophy
            .try_session_shared(
                Arc::clone(&cache),
                session.candidates().clone(),
                ConstraintSet::storage_fraction(o.schema(), 0.25),
            )
            .unwrap();
        assert_eq!(o.what_if_calls(), calls, "a shared open must not re-prepare");
        assert_eq!(twin.n_statements(), 8);
        let a = session.what_if(&Configuration::empty());
        let b = twin.what_if(&Configuration::empty());
        assert_eq!(a.cost.to_bits(), b.cost.to_bits(), "one cache, one answer");

        // Statement deltas through one session are visible through the other.
        let more = HomGen::new(45).generate(o.schema(), 2);
        twin.add_statements(&more);
        assert_eq!(cache.len(), 10);
        assert_eq!(session.n_representatives(), 10);
        let a2 = session.what_if(&Configuration::empty());
        assert!(a2.cost > a.cost, "grown workload must cost more");
        let r = twin.recommend();
        assert!(r.objective < r.baseline_cost);
    }

    #[test]
    fn budget_change_respected_after_retune() {
        let o = setup();
        let w = HomGen::new(35).generate(o.schema(), 15);
        let cophy = CoPhy::new(&o, CoPhyOptions::default());
        let mut session = cophy.session(&w, ConstraintSet::storage_fraction(o.schema(), 1.0));
        let _ = session.recommend();
        session.set_constraints(ConstraintSet::storage_fraction(o.schema(), 0.02));
        let r = session.recommend();
        assert!(
            r.configuration.size_bytes(o.schema()) <= o.schema().data_bytes() / 50 + 1,
            "budget not respected after retune"
        );
    }
}
