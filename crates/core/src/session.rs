//! Interactive tuning sessions (paper §4.2, Figure 6b).
//!
//! Index tuning is exploratory: the DBA nudges `S`, `W` or `C` and asks for a
//! revised recommendation.  Instead of rebuilding and re-solving from
//! scratch, a [`TuningSession`] keeps the INUM cache, the candidate set and
//! the solver's warm-start state (Lagrangian multipliers + last incumbent);
//! deltas extend the problem *in place* — new candidates append items with
//! fresh ids, new statements append blocks — so the multiplier coordinates of
//! the untouched parts remain valid and re-solves converge an order of
//! magnitude faster (the Figure 6b behavior).

use std::time::{Duration, Instant};

use cophy_bip::{LagrangianSolver, SolveProgress, WarmStart};
use cophy_catalog::Index;
use cophy_compress::{Absorption, CompressedWorkload};
use cophy_inum::{Inum, PreparedWorkload};
use cophy_workload::{QueryId, Workload};

use crate::cgen::CandidateSet;
use crate::constraints::ConstraintSet;
use crate::solver::{selection_to_config, CoPhy, Recommendation, SolveStats};

/// An open tuning session.
#[derive(Debug)]
pub struct TuningSession<'o, 'c> {
    cophy: &'c CoPhy<'o>,
    prepared: PreparedWorkload,
    candidates: CandidateSet,
    constraints: ConstraintSet,
    warm: Option<WarmStart>,
    /// The clustering state when [`crate::CoPhyOptions::compression`] is on:
    /// statement deltas route through incremental re-clustering
    /// ([`CompressedWorkload::absorb`]) instead of forcing a new INUM
    /// preparation per nudge.
    compressed: Option<CompressedWorkload>,
    /// Cumulative what-if calls spent on INUM preparation in this session.
    what_if_calls: u64,
    inum_time: Duration,
}

impl<'o, 'c> TuningSession<'o, 'c> {
    /// Open a session: run CGen and INUM once (over cluster representatives
    /// when compression is enabled).  Panicking wrapper around
    /// [`TuningSession::try_open`], kept for the `CoPhy::session` facade.
    pub(crate) fn open(cophy: &'c CoPhy<'o>, w: &Workload, constraints: ConstraintSet) -> Self {
        Self::try_open(cophy, w, constraints).unwrap_or_else(|e| panic!("{e}"))
    }

    /// [`TuningSession::open`], surfacing invalid options (non-storage-only
    /// constraints, invalid compression ε) as recoverable errors — the same
    /// contract as `CoPhy::try_tune`.
    pub(crate) fn try_open(
        cophy: &'c CoPhy<'o>,
        w: &Workload,
        constraints: ConstraintSet,
    ) -> Result<Self, String> {
        if !constraints.is_storage_only() {
            return Err(
                "interactive sessions use the Lagrangian backend (storage-only constraints)".into(),
            );
        }
        cophy.options.compression.validate()?;
        let t0 = Instant::now();
        let before = cophy.optimizer().what_if_calls();
        let schema = cophy.optimizer().schema();
        let inum = Inum::new(cophy.optimizer());
        let policy = cophy.options.compression;
        let (prepared, candidates, compressed) = if policy.is_off() {
            (inum.prepare_workload(w), cophy.options.cgen.generate(schema, w), None)
        } else {
            let cw = CompressedWorkload::compress(schema, w, policy);
            let prepared = inum.prepare_compressed_parallel(&cw);
            let candidates = cophy.options.cgen.generate(schema, cw.representatives());
            (prepared, candidates, Some(cw))
        };
        Ok(TuningSession {
            cophy,
            prepared,
            candidates,
            constraints,
            warm: None,
            compressed,
            what_if_calls: cophy.optimizer().what_if_calls() - before,
            inum_time: t0.elapsed(),
        })
    }

    pub fn candidates(&self) -> &CandidateSet {
        &self.candidates
    }

    /// Number of statements the session represents (original statements,
    /// not cluster representatives).
    pub fn n_statements(&self) -> usize {
        self.compressed.as_ref().map_or(self.prepared.queries.len(), |c| c.n_original())
    }

    /// Number of INUM-prepared representatives (equals
    /// [`TuningSession::n_statements`] when compression is off).
    pub fn n_representatives(&self) -> usize {
        self.prepared.queries.len()
    }

    /// Add DBA-curated candidate indexes (`S_DBA`); ids of existing
    /// candidates are stable, so the warm state stays valid.
    pub fn add_candidates(&mut self, extra: impl IntoIterator<Item = Index>) {
        self.candidates.extend(self.cophy.optimizer().schema(), extra);
    }

    /// Replace the storage budget (must remain storage-only).
    pub fn set_constraints(&mut self, constraints: ConstraintSet) {
        assert!(constraints.is_storage_only());
        self.constraints = constraints;
    }

    /// Append statements to the workload (new blocks; old block coordinates
    /// stay stable).  CGen runs over the genuinely new statements and
    /// extends the candidate set in place — existing candidate ids are
    /// stable, so the warm state remains valid while the new statements can
    /// actually be served by indexes.
    ///
    /// When compression is on, every delta routes through incremental
    /// re-clustering: statements that land in an existing cluster only bump
    /// their representative's weight — **zero** new what-if calls and no
    /// CGen work — and only genuinely novel statements open a cluster and
    /// pay an INUM preparation.
    pub fn add_statements(&mut self, w: &Workload) {
        let before = self.cophy.optimizer().what_if_calls();
        let t0 = Instant::now();
        let schema = self.cophy.optimizer().schema();
        let inum = Inum::new(self.cophy.optimizer());
        if let Some(cw) = self.compressed.as_mut() {
            // Only the cluster-opening statements are new to CGen.
            let mut novel = Workload::new();
            for (_, stmt, weight) in w.iter() {
                match cw.absorb(schema, stmt, weight) {
                    Absorption::Merged(rep) => {
                        self.prepared.queries[rep.0 as usize].weight += weight;
                    }
                    Absorption::NewRepresentative(rep) => {
                        debug_assert_eq!(rep.0 as usize, self.prepared.queries.len());
                        self.prepared.queries.push(inum.prepare_statement(rep, stmt, weight));
                        novel.push_weighted(stmt.clone(), weight);
                    }
                }
            }
            if !novel.is_empty() {
                let extra = self.cophy.options.cgen.generate(schema, &novel);
                self.candidates.extend(schema, extra.iter().map(|(_, ix)| ix.clone()));
            }
        } else {
            let offset = self.prepared.queries.len() as u32;
            for (qid, stmt, weight) in w.iter() {
                let mut pq = inum.prepare_statement(qid, stmt, weight);
                pq.qid = QueryId(offset + qid.0);
                self.prepared.queries.push(pq);
            }
            let extra = self.cophy.options.cgen.generate(schema, w);
            self.candidates.extend(schema, extra.iter().map(|(_, ix)| ix.clone()));
        }
        self.what_if_calls += self.cophy.optimizer().what_if_calls() - before;
        self.inum_time += t0.elapsed();
    }

    /// Compute (or re-compute) the recommendation, warm-starting from the
    /// previous solve.
    pub fn recommend(&mut self) -> Recommendation {
        self.recommend_with_progress(|_| {})
    }

    /// [`TuningSession::recommend`] with streaming incumbents: every
    /// improvement the warm-started solver finds is surfaced immediately as
    /// a [`SolveProgress`] event, so an interactive caller can show the
    /// refinement loop converging instead of waiting for the final answer
    /// (the paper's §4.2 continuous-feedback contract).
    pub fn recommend_with_progress(
        &mut self,
        mut on_progress: impl FnMut(&SolveProgress),
    ) -> Recommendation {
        let schema = self.cophy.optimizer().schema();
        let cm = self.cophy.optimizer().cost_model();
        let tb = Instant::now();
        let tp = self.cophy.options.bipgen.block_problem(
            schema,
            cm,
            &self.prepared,
            &self.candidates,
            &self.constraints,
        );
        let build_time = tb.elapsed();

        let ts = Instant::now();
        let solver = LagrangianSolver { budget: self.cophy.options.budget, ..Default::default() };
        let (r, warm) =
            solver.solve_warm_with_progress(&tp.block, self.warm.as_ref(), |p, _| on_progress(p));
        let solve_time = ts.elapsed();
        self.warm = Some(warm);

        let configuration = selection_to_config(&r.selected, &self.candidates);
        let baseline_cost = self.prepared.cost(schema, cm, &cophy_catalog::Configuration::empty());
        Recommendation {
            configuration,
            objective: r.objective + tp.fixed_cost,
            baseline_cost,
            bound: r.bound + tp.fixed_cost,
            gap: r.gap,
            trace: r.trace,
            compression: self.compressed.as_ref().map(|c| c.summary()),
            stats: SolveStats {
                inum_time: std::mem::take(&mut self.inum_time),
                build_time,
                solve_time,
                what_if_calls: std::mem::take(&mut self.what_if_calls),
                n_candidates: self.candidates.len(),
                n_variables: tp.block.n_choices() + tp.block.n_items,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::CoPhyOptions;
    use cophy_catalog::{ColumnId, TpchGen};
    use cophy_optimizer::{SystemProfile, WhatIfOptimizer};
    use cophy_workload::HomGen;

    fn setup() -> WhatIfOptimizer {
        WhatIfOptimizer::new(TpchGen::default().schema(), SystemProfile::A)
    }

    #[test]
    fn session_recommend_then_retune_with_new_candidates() {
        let o = setup();
        let w = HomGen::new(31).generate(o.schema(), 20);
        let cophy = CoPhy::new(&o, CoPhyOptions::default());
        let mut session = cophy.session(&w, ConstraintSet::storage_fraction(o.schema(), 0.5));
        let r1 = session.recommend();
        assert!(r1.objective < r1.baseline_cost);

        // DBA adds hand-picked candidates; retune must not get worse.
        let li = o.schema().table_by_name("lineitem").unwrap().id;
        session.add_candidates([
            Index::secondary(li, vec![ColumnId(10), ColumnId(4)]),
            Index::secondary(li, vec![ColumnId(0), ColumnId(10)]),
        ]);
        let r2 = session.recommend();
        assert!(
            r2.objective <= r1.objective * 1.001 + 1e-6,
            "more candidates cannot hurt: {} vs {}",
            r2.objective,
            r1.objective
        );
    }

    #[test]
    fn retune_reuses_warm_state_and_is_fast() {
        let o = setup();
        let w = HomGen::new(32).generate(o.schema(), 30);
        let cophy = CoPhy::new(&o, CoPhyOptions::default());
        let mut session = cophy.session(&w, ConstraintSet::storage_fraction(o.schema(), 1.0));
        let r1 = session.recommend();
        let cold_solve = r1.stats.solve_time;
        // Small delta: a couple of random candidates.
        let ord = o.schema().table_by_name("orders").unwrap().id;
        session.add_candidates([Index::secondary(ord, vec![ColumnId(6), ColumnId(1)])]);
        let r2 = session.recommend();
        // Warm solve should not blow up; typically it is much faster. We
        // assert a loose factor to stay robust on shared CI machines.
        assert!(
            r2.stats.solve_time <= cold_solve * 3 + Duration::from_millis(50),
            "warm {:?} vs cold {:?}",
            r2.stats.solve_time,
            cold_solve
        );
        assert!(r2.objective <= r1.objective * 1.001 + 1e-6);
    }

    #[test]
    fn recommend_streams_incumbents() {
        let o = setup();
        let w = HomGen::new(36).generate(o.schema(), 20);
        let cophy = CoPhy::new(&o, CoPhyOptions::default());
        let mut session = cophy.session(&w, ConstraintSet::storage_fraction(o.schema(), 0.5));
        let mut events: Vec<SolveProgress> = Vec::new();
        let r = session.recommend_with_progress(|p| events.push(*p));
        assert!(!events.is_empty(), "the interactive loop must stream progress");
        let (mut prev_inc, mut prev_gap) = (f64::INFINITY, f64::INFINITY);
        for e in &events {
            assert!(e.incumbent <= prev_inc + 1e-9, "incumbents must only improve");
            assert!(e.gap <= prev_gap + 1e-12, "gap series must not regress");
            prev_inc = e.incumbent;
            prev_gap = e.gap;
        }
        // The stream converges onto the returned recommendation (the fixed
        // update-base cost is added on top of the solver objective).
        assert!(prev_inc <= r.objective + 1e-6);
        assert!((events.last().unwrap().gap - r.gap).abs() < 1e-9);
    }

    #[test]
    fn adding_statements_extends_blocks() {
        let o = setup();
        let w = HomGen::new(33).generate(o.schema(), 10);
        let cophy = CoPhy::new(&o, CoPhyOptions::default());
        let mut session = cophy.session(&w, ConstraintSet::storage_fraction(o.schema(), 1.0));
        let r1 = session.recommend();
        let more = HomGen::new(34).generate(o.schema(), 5);
        session.add_statements(&more);
        assert_eq!(session.n_statements(), 15);
        let r2 = session.recommend();
        // More statements → higher total workload cost.
        assert!(r2.objective > r1.objective);
        assert!(r2.baseline_cost > r1.baseline_cost);
    }

    #[test]
    fn compressed_session_absorbs_deltas_without_new_probes() {
        let o = setup();
        let w = HomGen::new(37).generate(o.schema(), 30);
        let opts = crate::CoPhyOptions {
            compression: cophy_compress::CompressionPolicy::default_epsilon(),
            ..Default::default()
        };
        let cophy = CoPhy::new(&o, opts);
        let mut session = cophy.session(&w, ConstraintSet::storage_fraction(o.schema(), 0.5));
        assert_eq!(session.n_statements(), 30);
        assert!(session.n_representatives() < 30, "W_hom must cluster");
        let r1 = session.recommend();
        assert_eq!(r1.compression.unwrap().n_original, 30);

        // Re-send part of the workload verbatim: pure weight bumps, zero
        // what-if calls, no new representatives.
        let reps_before = session.n_representatives();
        let calls_before = o.what_if_calls();
        session.add_statements(&w.truncate(10));
        assert_eq!(o.what_if_calls(), calls_before, "duplicates must not probe");
        assert_eq!(session.n_representatives(), reps_before);
        assert_eq!(session.n_statements(), 40);

        // The recommendation reflects the grown workload.
        let r2 = session.recommend();
        assert!(r2.baseline_cost > r1.baseline_cost);
        assert_eq!(r2.compression.unwrap().n_original, 40);

        // A genuinely novel statement pays exactly one preparation, and
        // CGen extends the candidate set so indexes can actually serve it.
        let ps = o.schema().table_by_name("partsupp").unwrap().id;
        let aq = o.schema().resolve("partsupp.ps_availqty").unwrap();
        let mut q = cophy_workload::Query::scan(ps);
        q.predicates.push(cophy_workload::Predicate::gt(aq, 100.0));
        let mut novel = Workload::new();
        novel.push(cophy_workload::Statement::Select(q));
        session.add_statements(&novel);
        assert!(o.what_if_calls() > calls_before, "novel statement must probe");
        assert_eq!(session.n_representatives(), reps_before + 1);
        assert!(
            session
                .candidates()
                .iter()
                .any(|(_, ix)| ix.table == ps && ix.key.first() == Some(&aq.column)),
            "candidate set must gain an index keyed on the novel predicate column"
        );
    }

    #[test]
    fn try_session_surfaces_invalid_options_as_errors() {
        let o = setup();
        let w = HomGen::new(38).generate(o.schema(), 5);
        let storage = ConstraintSet::storage_fraction(o.schema(), 1.0);
        let bad_eps = crate::CoPhyOptions {
            compression: cophy_compress::CompressionPolicy::Epsilon(-0.5),
            ..Default::default()
        };
        let err = CoPhy::new(&o, bad_eps).try_session(&w, storage.clone()).err().unwrap();
        assert!(err.contains("invalid compression ε"), "{err}");

        let li = o.schema().table_by_name("lineitem").unwrap().id;
        let rich = storage.with(crate::Constraint::IndexCount {
            filter: crate::IndexFilter::on_table(li),
            cmp: crate::Cmp::Le,
            value: 1,
        });
        let cophy = CoPhy::new(&o, crate::CoPhyOptions::default());
        assert!(cophy.try_session(&w, rich).is_err(), "rich constraints are not sessionable");
    }

    #[test]
    fn budget_change_respected_after_retune() {
        let o = setup();
        let w = HomGen::new(35).generate(o.schema(), 15);
        let cophy = CoPhy::new(&o, CoPhyOptions::default());
        let mut session = cophy.session(&w, ConstraintSet::storage_fraction(o.schema(), 1.0));
        let _ = session.recommend();
        session.set_constraints(ConstraintSet::storage_fraction(o.schema(), 0.02));
        let r = session.recommend();
        assert!(
            r.configuration.size_bytes(o.schema()) <= o.schema().data_bytes() / 50 + 1,
            "budget not respected after retune"
        );
    }
}
