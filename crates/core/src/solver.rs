//! The CoPhy Solver (paper Figure 3) and the advisor facade.
//!
//! `Solver(B, C_hard)`:
//!
//! 1. **feasibility check** — an LP over the `z` variables and the
//!    constraint rows; on failure the offending constraints are reported so
//!    the DBA can drop or soften them;
//! 2. **`relax(B)`** — the Lagrangian relaxation of the coupling
//!    constraints (storage-only instances; the common, large case), or the
//!    LP relaxation inside branch-and-bound (rich constraint sets);
//! 3. **solve** — anytime incumbents with a global bound; terminate at the
//!    configured optimality gap (the paper runs at 5%).
//!
//! Both backends run inside the shared anytime engine
//! ([`cophy_bip::SolveDriver`]): the advisor passes one [`SolveBudget`]
//! (gap / wall-clock / node limits) to whichever backend is selected and
//! surfaces the unified [`SolveProgress`] stream through
//! [`CoPhy::try_tune_prepared_with_progress`].

use std::time::{Duration, Instant};

use cophy_bip::{
    BranchBound, GapPoint, LagrangianSolver, LinExpr, MipStatus, Model, Sense, SolveBudget,
    SolveOptions, SolveProgress,
};
use cophy_catalog::Configuration;
use cophy_compress::{CompressedWorkload, CompressionPolicy, CompressionSummary};
use cophy_inum::{Inum, PrepFaultReport, PreparedWorkload};
use cophy_optimizer::{RetryPolicy, WhatIfBackend};
use cophy_workload::{Workload, WorkloadSource, DEFAULT_CHUNK};

use crate::bipgen::{BipGen, BipMapping};
use crate::cgen::{CGen, CandidateSet};
use crate::constraints::{Cmp, Constraint, ConstraintSet};
use crate::session::TuningSession;

/// Which engine solves the BIP.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolverBackend {
    /// Lagrangian for storage-only constraint sets, B&B otherwise.
    Auto,
    /// Force the Lagrangian decomposition (storage-only sets).
    Lagrangian,
    /// Force the generic simplex-based branch-and-bound.
    BranchBound,
}

/// Advisor options.
#[derive(Debug, Clone)]
pub struct CoPhyOptions {
    /// The solve budget handed to whichever backend runs: relative gap
    /// (paper default 5%), wall-clock limit (default **60 s**, overridable
    /// to `None` for unbounded solves), node/iteration limit, and
    /// `parallelism` — how many frontier nodes the branch-and-bound backend
    /// evaluates concurrently per round (default 1 = serial, bit-for-bit
    /// deterministic; see [`SolveBudget::with_parallelism`]).
    pub budget: SolveBudget,
    pub backend: SolverBackend,
    pub cgen: CGen,
    pub bipgen: BipGen,
    /// Workload compression before INUM preparation: `Off` (default —
    /// bit-for-bit today's pipeline), `Lossless` (exact-duplicate merging),
    /// or `Epsilon(ε)` (bounded-loss clustering; see
    /// [`CompressionPolicy::default_epsilon`]).  Under compression, INUM
    /// prepares only cluster representatives and the reported costs expand
    /// back to the full workload through the conserved cluster weights.
    pub compression: CompressionPolicy,
    /// Retry policy of the INUM preparation probes: transient backend
    /// failures are retried with capped exponential backoff, and a probe
    /// that exhausts its retries *degrades* the statement (skipped template
    /// / substituted cost) instead of aborting the tune.  The default
    /// [`RetryPolicy::none`] performs no retries — preparation is then
    /// bit-identical to the pre-fault-layer pipeline.
    pub retry: RetryPolicy,
    /// The degradation hard floor: when the weighted fraction of the
    /// workload prepared *fully* drops below this, the tune fails with a
    /// typed error instead of returning a silently unreliable
    /// recommendation.  `0.0` never fails; `1.0` tolerates no degradation.
    pub min_coverage: f64,
}

impl Default for CoPhyOptions {
    fn default() -> Self {
        CoPhyOptions {
            budget: SolveBudget::within(0.05).with_time(Duration::from_secs(60)),
            backend: SolverBackend::Auto,
            cgen: CGen::default(),
            bipgen: BipGen::default(),
            compression: CompressionPolicy::Off,
            retry: RetryPolicy::none(),
            min_coverage: 0.5,
        }
    }
}

/// Where the time went (the paper's INUM / build / solve split, Figures
/// 5 & 10).
#[derive(Debug, Clone, Default)]
pub struct SolveStats {
    pub inum_time: Duration,
    pub build_time: Duration,
    pub solve_time: Duration,
    pub what_if_calls: u64,
    pub n_candidates: usize,
    /// μ-dimension (Lagrangian) or variable count (B&B).
    pub n_variables: usize,
}

impl SolveStats {
    pub fn total_time(&self) -> Duration {
        self.inum_time + self.build_time + self.solve_time
    }
}

/// How much a tune was degraded by lost what-if probes (retry exhaustion
/// during INUM preparation).  Attached to [`Recommendation::degradation`]
/// whenever anything failed; absent on a fault-free preparation.
#[derive(Debug, Clone, PartialEq)]
pub struct DegradationReport {
    /// Probes that failed at least once (recovered + lost).
    pub probes_failed: u64,
    /// Retry attempts spent during preparation.
    pub retries: u64,
    /// Probes recovered by a retry — their answers are exact.
    pub probes_recovered: u64,
    /// Probes lost after retry exhaustion: their templates were skipped or
    /// their statements' costs substituted.
    pub probes_substituted: u64,
    /// Statements with at least one lost probe.
    pub statements_degraded: usize,
    /// Statements prepared in total.
    pub statements_total: usize,
    /// Weighted fraction of the workload prepared *fully* (1.0 = nothing
    /// degraded).  Compared against [`CoPhyOptions::min_coverage`].
    pub coverage: f64,
    /// Worst-case relative cost-bound inflation: the weighted share of the
    /// baseline workload cost carried by degraded statements.  Lost probes
    /// can only *overestimate* a statement's cost (the unconstrained
    /// template still instantiates under every configuration), so the
    /// reported objective exceeds the true INUM objective by at most this
    /// fraction.
    pub worst_case_inflation: f64,
}

impl DegradationReport {
    /// Build the report from a resilient preparation's fault account.
    /// Returns `None` when nothing failed.
    pub(crate) fn from_prep(
        schema: &cophy_catalog::Schema,
        cm: &cophy_optimizer::CostModel,
        prepared: &PreparedWorkload,
        report: &PrepFaultReport,
    ) -> Option<DegradationReport> {
        if report.is_clean() {
            return None;
        }
        let log = &report.log;
        let total_weight: f64 = prepared.queries.iter().map(|pq| pq.weight).sum();
        let degraded_weight: f64 = report.degraded.iter().map(|d| d.weight).sum();
        let baseline = prepared.cost(schema, cm, &Configuration::empty());
        let degraded_base: f64 = report
            .degraded
            .iter()
            .filter_map(|d| prepared.queries.iter().find(|pq| pq.qid == d.qid))
            .map(|pq| pq.weight * pq.cost(schema, cm, &Configuration::empty()))
            .sum();
        Some(DegradationReport {
            probes_failed: log.probes_recovered + log.probes_exhausted,
            retries: log.retries,
            probes_recovered: log.probes_recovered,
            probes_substituted: log.probes_exhausted,
            statements_degraded: report.degraded.len(),
            statements_total: prepared.queries.len(),
            coverage: if total_weight > 0.0 { 1.0 - degraded_weight / total_weight } else { 1.0 },
            worst_case_inflation: if baseline > 0.0 { degraded_base / baseline } else { 0.0 },
        })
    }
}

/// A tuning outcome.
#[derive(Debug, Clone)]
pub struct Recommendation {
    pub configuration: Configuration,
    /// INUM-estimated workload cost under the recommendation.
    pub objective: f64,
    /// INUM-estimated workload cost under the empty configuration.
    pub baseline_cost: f64,
    /// Global lower bound proved by the solver.
    pub bound: f64,
    /// Relative optimality gap at termination.
    pub gap: f64,
    /// Anytime incumbent/bound trace (Figure 6a).
    pub trace: Vec<GapPoint>,
    pub stats: SolveStats,
    /// Present when the workload was compressed before tuning.  `objective`
    /// and `baseline_cost` are then *expansions* to the full workload:
    /// cluster weights conserve total workload weight, so
    /// `Σ_r w_r · cost(rep_r, X)` estimates `Σ_q f_q · cost(q, X)` with each
    /// original statement approximated by its representative — reported
    /// TotalCost stays comparable with an uncompressed tune.
    pub compression: Option<CompressionSummary>,
    /// Present when INUM preparation lost probes to exhausted retries (see
    /// [`CoPhyOptions::retry`]): how much of the workload was degraded and
    /// the worst-case inflation of the reported cost bound.  `None` on a
    /// fault-free preparation — including every run without a fault layer.
    pub degradation: Option<DegradationReport>,
}

impl Recommendation {
    /// Estimated improvement `1 − cost(X*)/cost(∅)` (INUM-based; the bench
    /// harness re-measures against the ground-truth optimizer).
    pub fn estimated_improvement(&self) -> f64 {
        if self.baseline_cost <= 0.0 {
            return 0.0;
        }
        1.0 - self.objective / self.baseline_cost
    }
}

/// The CoPhy advisor — a thin layer over any [`WhatIfBackend`] (live
/// optimizer, trace replay, noise wrapper, or a custom DBMS adapter).
#[derive(Debug)]
pub struct CoPhy<'o> {
    opt: &'o dyn WhatIfBackend,
    pub options: CoPhyOptions,
}

impl<'o> CoPhy<'o> {
    pub fn new(opt: &'o dyn WhatIfBackend, options: CoPhyOptions) -> Self {
        CoPhy { opt, options }
    }

    /// The what-if backend behind this advisor.
    pub fn optimizer(&self) -> &'o dyn WhatIfBackend {
        self.opt
    }

    /// Full pipeline: CGen → INUM → BIPGen → Solver.
    pub fn tune(&self, w: &Workload, constraints: &ConstraintSet) -> Recommendation {
        self.try_tune(w, constraints).expect("tuning problem infeasible")
    }

    /// Full pipeline, surfacing infeasibility (paper line 2: the DBA removes
    /// or softens the reported constraints).
    ///
    /// With [`CoPhyOptions::compression`] enabled the workload is clustered
    /// first; CGen and INUM then see only the weighted representatives, so
    /// the what-if budget scales with the number of clusters instead of
    /// `|W|`.
    pub fn try_tune(
        &self,
        w: &Workload,
        constraints: &ConstraintSet,
    ) -> Result<Recommendation, String> {
        if self.options.compression.is_off() {
            let candidates = self.options.cgen.generate(self.opt.schema(), w);
            return self.try_tune_with_candidates(w, &candidates, constraints);
        }
        self.options.compression.validate()?;
        let cw = CompressedWorkload::compress(self.opt.schema(), w, self.options.compression);
        let candidates = self.options.cgen.generate(self.opt.schema(), cw.representatives());
        self.try_tune_compressed(&cw, &candidates, constraints)
    }

    /// Tune a pre-compressed workload: INUM prepares only the
    /// representatives (in parallel), and the recommendation carries the
    /// [`CompressionSummary`] documenting the expansion back to the full
    /// workload.  As on the uncompressed paths, `stats.inum_time` covers
    /// preparation only (clustering and CGen are excluded), so prep times
    /// stay comparable across policies.
    pub fn try_tune_compressed(
        &self,
        cw: &CompressedWorkload,
        candidates: &CandidateSet,
        constraints: &ConstraintSet,
    ) -> Result<Recommendation, String> {
        let t0 = Instant::now();
        let calls_before = self.opt.what_if_calls();
        let inum = Inum::with_retry(self.opt, self.options.retry.clone());
        let (prepared, faults) =
            inum.try_prepare_compressed_resilient_parallel(cw, None).map_err(|e| e.to_string())?;
        let inum_time = t0.elapsed();
        let what_if_calls = self.opt.what_if_calls() - calls_before;
        let degradation = DegradationReport::from_prep(
            self.opt.schema(),
            self.opt.cost_model(),
            &prepared,
            &faults,
        );
        self.enforce_coverage(&degradation)?;
        let mut rec =
            self.try_tune_prepared(&prepared, candidates, constraints, inum_time, what_if_calls)?;
        rec.compression = Some(cw.summary());
        rec.degradation = degradation;
        Ok(rec)
    }

    /// Pipeline with a caller-supplied candidate set (`S_DBA` merging, the
    /// Figure-5 sweeps).
    pub fn tune_with_candidates(
        &self,
        w: &Workload,
        candidates: &CandidateSet,
        constraints: &ConstraintSet,
    ) -> Recommendation {
        self.try_tune_with_candidates(w, candidates, constraints)
            .expect("tuning problem infeasible")
    }

    pub fn try_tune_with_candidates(
        &self,
        w: &Workload,
        candidates: &CandidateSet,
        constraints: &ConstraintSet,
    ) -> Result<Recommendation, String> {
        if !self.options.compression.is_off() {
            self.options.compression.validate()?;
            let cw = CompressedWorkload::compress(self.opt.schema(), w, self.options.compression);
            return self.try_tune_compressed(&cw, candidates, constraints);
        }
        let t0 = Instant::now();
        let before_calls = self.opt.what_if_calls();
        let inum = Inum::with_retry(self.opt, self.options.retry.clone());
        let (prepared, faults) =
            inum.try_prepare_workload_resilient(w, None).map_err(|e| e.to_string())?;
        let inum_time = t0.elapsed();
        let what_if_calls = self.opt.what_if_calls() - before_calls;
        let degradation = DegradationReport::from_prep(
            self.opt.schema(),
            self.opt.cost_model(),
            &prepared,
            &faults,
        );
        self.enforce_coverage(&degradation)?;
        let mut rec =
            self.try_tune_prepared(&prepared, candidates, constraints, inum_time, what_if_calls)?;
        rec.degradation = degradation;
        Ok(rec)
    }

    /// The degradation hard floor: a coverage below
    /// [`CoPhyOptions::min_coverage`] is a typed error, never a silent bad
    /// recommendation.
    pub(crate) fn enforce_coverage(
        &self,
        degradation: &Option<DegradationReport>,
    ) -> Result<(), String> {
        if let Some(d) = degradation {
            if d.coverage < self.options.min_coverage {
                return Err(format!(
                    "degraded coverage {:.3} below floor {:.3}: {} of {} statements lost \
                     what-if probes during preparation",
                    d.coverage,
                    self.options.min_coverage,
                    d.statements_degraded,
                    d.statements_total
                ));
            }
        }
        Ok(())
    }

    /// Solve from an existing INUM cache (used by sessions and benches that
    /// amortize preparation).
    pub fn try_tune_prepared(
        &self,
        prepared: &PreparedWorkload,
        candidates: &CandidateSet,
        constraints: &ConstraintSet,
        inum_time: Duration,
        what_if_calls: u64,
    ) -> Result<Recommendation, String> {
        self.try_tune_prepared_with_progress(
            prepared,
            candidates,
            constraints,
            inum_time,
            what_if_calls,
            |_| {},
        )
    }

    /// [`CoPhy::try_tune_prepared`] with the unified anytime stream: every
    /// incumbent or bound improvement of whichever backend runs is surfaced
    /// as a [`SolveProgress`] event (the paper's continuous solver feedback,
    /// Figures 3 & 6a) — identical semantics for both backends.
    pub fn try_tune_prepared_with_progress(
        &self,
        prepared: &PreparedWorkload,
        candidates: &CandidateSet,
        constraints: &ConstraintSet,
        inum_time: Duration,
        what_if_calls: u64,
        mut on_progress: impl FnMut(&SolveProgress),
    ) -> Result<Recommendation, String> {
        let schema = self.opt.schema();
        let cm = self.opt.cost_model();

        // Step 1: feasibility of the z-only polytope.
        self.check_feasibility(candidates, constraints)?;

        let use_lagrangian = match self.options.backend {
            SolverBackend::Lagrangian => true,
            SolverBackend::BranchBound => false,
            SolverBackend::Auto => constraints.is_storage_only(),
        };

        let tb = Instant::now();
        if use_lagrangian && !constraints.is_storage_only() {
            return Err("Lagrangian backend supports storage-only constraint sets".into());
        }

        let (configuration, objective, bound, gap, trace, build_time, solve_time, n_vars);
        if use_lagrangian {
            let tp =
                self.options.bipgen.block_problem(schema, cm, prepared, candidates, constraints);
            build_time = tb.elapsed();
            let ts = Instant::now();
            let solver = LagrangianSolver { budget: self.options.budget, ..Default::default() };
            let (r, _) = solver.solve_warm_with_progress(&tp.block, None, |p, _| on_progress(p));
            solve_time = ts.elapsed();
            n_vars = tp.block.n_choices() + tp.block.n_items;
            configuration = selection_to_config(&r.selected, candidates);
            objective = r.objective + tp.fixed_cost;
            bound = r.bound + tp.fixed_cost;
            gap = r.gap;
            trace = r.trace;
        } else {
            let (model, mapping) =
                self.options.bipgen.model(schema, cm, prepared, candidates, constraints);
            build_time = tb.elapsed();
            let fixed: f64 =
                prepared.queries.iter().map(|pq| pq.weight * pq.fixed_update_cost).sum();
            let ts = Instant::now();
            // Seed the generic backend with the structure-exploiting
            // backend's answer to the storage-only projection of the
            // constraint set: completing that selection through Theorem 1's
            // rows yields a near-optimal starting incumbent (which the
            // rounding repair adjusts for the rich constraint rows), and the
            // projection's dual bound is a valid lower bound for the rich
            // problem, keeping the gap finite even if the root LP times out.
            let seed = self.storage_projection_seed(
                schema,
                cm,
                prepared,
                candidates,
                constraints,
                &mapping,
                model.n_vars(),
            );
            let (seed_x, known_bound) = match &seed {
                Some((x, b)) => (Some(x.as_slice()), b.is_finite().then_some(*b)),
                None => (None, None),
            };
            // The seed solve spends part of the caller's wall clock.
            let mut budget = self.options.budget;
            budget.time_limit = budget.time_limit.map(|t| t.saturating_sub(ts.elapsed()));
            let opts = SolveOptions { budget, known_bound, ..Default::default() };
            let r = BranchBound::new()
                .solve_seeded_with_progress(&model, &opts, seed_x, |p, _| on_progress(p));
            solve_time = ts.elapsed();
            if r.status == MipStatus::Infeasible {
                return Err("BIP infeasible under the hard constraints".into());
            }
            if r.x.is_empty() {
                return Err(format!(
                    "no feasible incumbent within the solve budget ({:?})",
                    r.status
                ));
            }
            n_vars = model.n_vars();
            configuration = mapping.extract_configuration(&r.x, candidates);
            objective = r.objective + fixed;
            bound = r.bound + fixed;
            gap = r.gap;
            trace = r.trace;
        }

        let baseline_cost = prepared.cost(schema, cm, &Configuration::empty());
        debug_assert!(
            constraints.check_configuration(schema, &configuration).is_ok(),
            "solver returned a constraint-violating configuration"
        );
        Ok(Recommendation {
            configuration,
            objective,
            baseline_cost,
            bound,
            gap,
            trace,
            compression: None,
            degradation: None,
            stats: SolveStats {
                inum_time,
                build_time,
                solve_time,
                what_if_calls,
                n_candidates: candidates.len(),
                n_variables: n_vars,
            },
        })
    }

    /// Primal seed for rich-constraint solves: drop every non-storage
    /// constraint, solve the resulting block-angular problem with a small
    /// Lagrangian budget, and complete its selection through the Theorem-1
    /// variable layout.  Returns the completed point plus the projection's
    /// dual bound — the projection is a relaxation of the rich problem, so
    /// that bound is a valid global lower bound for it.
    #[allow(clippy::too_many_arguments)]
    fn storage_projection_seed(
        &self,
        schema: &cophy_catalog::Schema,
        cm: &cophy_optimizer::CostModel,
        prepared: &PreparedWorkload,
        candidates: &CandidateSet,
        constraints: &ConstraintSet,
        mapping: &BipMapping,
        n_vars: usize,
    ) -> Option<(Vec<f64>, f64)> {
        if candidates.is_empty() {
            return None;
        }
        let projection = match constraints.storage_budget() {
            Some(budget_bytes) => ConstraintSet::none().with(Constraint::Storage { budget_bytes }),
            None => ConstraintSet::none(),
        };
        let tp = self.options.bipgen.block_problem(schema, cm, prepared, candidates, &projection);
        let budget = SolveBudget {
            gap_limit: 0.05,
            time_limit: self.options.budget.time_limit.map(|t| t / 10),
            node_limit: Some(200),
            ..Default::default()
        };
        let r = LagrangianSolver { budget, ..Default::default() }.solve(&tp.block);
        Some((mapping.completion(&r.selected, n_vars), r.bound))
    }

    /// Paper Figure 3, line 1: is the constraint polytope non-empty?
    /// Reports the violated constraints on failure.
    pub fn check_feasibility(
        &self,
        candidates: &CandidateSet,
        constraints: &ConstraintSet,
    ) -> Result<(), String> {
        let rows = constraints.z_rows(self.opt.schema(), candidates);
        if rows.is_empty() {
            return Ok(());
        }
        let mut m = Model::new();
        let z: Vec<_> = (0..candidates.len()).map(|a| m.add_var(format!("z{a}"), 0.0)).collect();
        for (terms, cmp, rhs) in &rows {
            let mut e = LinExpr::new();
            for (pos, c) in terms {
                e.add(z[*pos], *c);
            }
            let sense = match cmp {
                Cmp::Le => Sense::Le,
                Cmp::Ge => Sense::Ge,
                Cmp::Eq => Sense::Eq,
            };
            m.add_constraint(e, sense, *rhs);
        }
        if BranchBound::new().is_feasible(&m) {
            Ok(())
        } else {
            Err("hard constraints are mutually infeasible over the candidate set".into())
        }
    }

    /// Open an interactive tuning session (paper §4.2).  Panics on invalid
    /// options; see [`CoPhy::try_session`] for the recoverable variant.
    pub fn session(&self, w: &Workload, constraints: ConstraintSet) -> TuningSession<'o, '_> {
        TuningSession::open(self, w, constraints)
    }

    /// [`CoPhy::session`], surfacing invalid options (non-storage-only
    /// constraints, invalid compression ε) as errors — the same contract as
    /// [`CoPhy::try_tune`].
    pub fn try_session(
        &self,
        w: &Workload,
        constraints: ConstraintSet,
    ) -> Result<TuningSession<'o, '_>, String> {
        TuningSession::try_open(self, w, constraints)
    }

    /// Open a session over an **existing** shared INUM cache
    /// ([`TuningSession::cache`]): the advisor-as-a-service pattern where
    /// many sessions answer `what_if` / `recommend` against one prepared
    /// workload.  No CGen or INUM work is paid; `candidates` is typically
    /// cloned from the session that built the cache.
    pub fn try_session_shared(
        &self,
        cache: std::sync::Arc<cophy_inum::InumCache>,
        candidates: CandidateSet,
        constraints: ConstraintSet,
    ) -> Result<TuningSession<'o, '_>, String> {
        TuningSession::try_open_shared(self, cache, candidates, constraints)
    }

    /// Open a session by **streaming** a [`WorkloadSource`] in
    /// [`DEFAULT_CHUNK`]-sized chunks instead of materializing the workload:
    /// the large-|W| ingestion path.  With compression enabled the session
    /// clusters online ([`CompressedWorkload::streaming`]) — resident state
    /// is bounded by the representative count plus one chunk buffer, and
    /// INUM/CGen run only over cluster-opening statements.  Callers needing
    /// a different chunk size open over an empty source and drive
    /// [`TuningSession::try_add_source`] directly.
    pub fn try_session_streaming(
        &self,
        source: &mut dyn WorkloadSource,
        constraints: ConstraintSet,
    ) -> Result<TuningSession<'o, '_>, String> {
        TuningSession::try_open_streaming(self, source, DEFAULT_CHUNK, constraints)
    }

    /// Full pipeline over a **streamed** workload: chunked ingestion (see
    /// [`CoPhy::try_session_streaming`]) followed by one solve.  This is the
    /// million-statement entry point — the workload is never materialized,
    /// so memory scales with the cluster-representative count rather than
    /// `|W|`.  Storage-only constraint sets (the Lagrangian block-decomposed
    /// backend); richer sets still go through the batch [`CoPhy::try_tune`].
    pub fn try_tune_source(
        &self,
        source: &mut dyn WorkloadSource,
        constraints: &ConstraintSet,
    ) -> Result<Recommendation, String> {
        self.try_tune_source_with_progress(source, constraints, |_| {})
    }

    /// [`CoPhy::try_tune_source`] with the unified anytime stream (block
    /// decomposition progress included via
    /// [`SolveProgress::decomposition`](cophy_bip::SolveProgress)).
    pub fn try_tune_source_with_progress(
        &self,
        source: &mut dyn WorkloadSource,
        constraints: &ConstraintSet,
        on_progress: impl FnMut(&SolveProgress),
    ) -> Result<Recommendation, String> {
        let mut session = self.try_session_streaming(source, constraints.clone())?;
        self.check_feasibility(session.candidates(), constraints)?;
        Ok(session.recommend_with_progress(on_progress))
    }
}

/// Convert a Lagrangian selection vector into a configuration.
pub(crate) fn selection_to_config(sel: &[bool], candidates: &CandidateSet) -> Configuration {
    Configuration::from_indexes(
        candidates.iter().filter(|(id, _)| sel[id.0 as usize]).map(|(_, ix)| ix.clone()),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraints::{Constraint, IndexFilter};
    use cophy_catalog::TpchGen;
    use cophy_optimizer::{SystemProfile, WhatIfOptimizer};
    use cophy_workload::HomGen;

    fn advisor_setup(n: usize) -> (WhatIfOptimizer, Workload) {
        let o = WhatIfOptimizer::new(TpchGen::default().schema(), SystemProfile::A);
        let w = HomGen::new(77).generate(o.schema(), n);
        (o, w)
    }

    #[test]
    fn end_to_end_tune_improves_workload() {
        let (o, w) = advisor_setup(25);
        let cophy = CoPhy::new(&o, CoPhyOptions::default());
        let constraints = ConstraintSet::storage_fraction(o.schema(), 1.0);
        let rec = cophy.tune(&w, &constraints);
        assert!(!rec.configuration.is_empty(), "should recommend something");
        assert!(rec.objective < rec.baseline_cost, "must beat the empty config");
        assert!(rec.estimated_improvement() > 0.1, "{}", rec.estimated_improvement());
        assert!(rec.bound <= rec.objective + 1e-6);
        // ground truth check: the optimizer agrees the config helps
        let perf = o.perf(&w, &rec.configuration);
        assert!(perf > 0.0, "optimizer-measured improvement {perf}");
        // constraints respected
        assert!(constraints.check_configuration(o.schema(), &rec.configuration).is_ok());
    }

    #[test]
    fn tighter_budget_never_improves_objective() {
        let (o, w) = advisor_setup(15);
        let cophy = CoPhy::new(&o, CoPhyOptions::default());
        let loose = cophy.tune(&w, &ConstraintSet::storage_fraction(o.schema(), 1.0));
        let tight = cophy.tune(&w, &ConstraintSet::storage_fraction(o.schema(), 0.05));
        assert!(loose.objective <= tight.objective * 1.02 + 1e-6);
        let tight_size = tight.configuration.size_bytes(o.schema());
        assert!(tight_size <= o.schema().data_bytes() / 20 + 1);
    }

    #[test]
    fn backends_agree_on_small_instance() {
        let (o, w) = advisor_setup(6);
        let constraints = ConstraintSet::storage_fraction(o.schema(), 0.2);
        let candidates = CGen::default().generate(o.schema(), &w).truncate(10);
        let mut opts = CoPhyOptions {
            budget: SolveBudget { gap_limit: 1e-6, node_limit: Some(800), ..Default::default() },
            ..Default::default()
        };
        opts.backend = SolverBackend::Lagrangian;
        let lag = CoPhy::new(&o, opts.clone()).tune_with_candidates(&w, &candidates, &constraints);
        opts.backend = SolverBackend::BranchBound;
        let bb = CoPhy::new(&o, opts).tune_with_candidates(&w, &candidates, &constraints);
        // B&B is exact; the Lagrangian incumbent must be within a small gap.
        assert!(lag.objective >= bb.objective - 1e-6);
        assert!(
            (lag.objective - bb.objective) / bb.objective < 0.02,
            "lagrangian {} vs exact {}",
            lag.objective,
            bb.objective
        );
    }

    #[test]
    fn lossless_compression_halves_probes_on_duplicated_workloads() {
        let (o, base) = advisor_setup(12);
        // Every statement twice: the lossless tune must probe half as much.
        let mut w = Workload::new();
        for (_, stmt, weight) in base.iter().chain(base.iter()) {
            w.push_weighted(stmt.clone(), weight);
        }
        let constraints = ConstraintSet::storage_fraction(o.schema(), 0.5);
        let plain = CoPhy::new(&o, CoPhyOptions::default()).tune(&w, &constraints);
        assert!(plain.compression.is_none());
        let opts = CoPhyOptions { compression: CompressionPolicy::Lossless, ..Default::default() };
        let rec = CoPhy::new(&o, opts).tune(&w, &constraints);
        let summary = rec.compression.expect("compressed tune carries its summary");
        assert_eq!(summary.n_original, w.len());
        assert!(summary.n_representatives <= base.len());
        assert!((summary.total_weight - w.total_weight()).abs() < 1e-9);
        assert!(
            rec.stats.what_if_calls <= plain.stats.what_if_calls / 2 + 1,
            "lossless compression must cut probes: {} vs {}",
            rec.stats.what_if_calls,
            plain.stats.what_if_calls
        );
        // Lossless merging leaves the weighted cost function unchanged, so
        // the expanded objective matches the plain tune closely (both solves
        // stop at the configured gap).
        assert!((rec.objective - plain.objective).abs() / plain.objective < 0.05);
        assert!((rec.baseline_cost - plain.baseline_cost).abs() < 1e-6 * plain.baseline_cost);
    }

    #[test]
    fn epsilon_compression_cuts_probes_and_expands_costs() {
        let (o, w) = advisor_setup(60);
        let constraints = ConstraintSet::storage_fraction(o.schema(), 0.5);
        let plain = CoPhy::new(&o, CoPhyOptions::default()).tune(&w, &constraints);
        let opts = CoPhyOptions {
            compression: CompressionPolicy::default_epsilon(),
            ..Default::default()
        };
        let rec = CoPhy::new(&o, opts).tune(&w, &constraints);
        let summary = rec.compression.expect("summary present");
        assert!(summary.ratio() > 1.5, "W_hom60 must compress: ratio {}", summary.ratio());
        assert!(rec.stats.what_if_calls < plain.stats.what_if_calls);
        // The recommendation itself must hold up on the *full* workload.
        let full = Inum::new(&o).prepare_workload(&w);
        let cost_plain = full.cost(o.schema(), o.cost_model(), &plain.configuration);
        let cost_comp = full.cost(o.schema(), o.cost_model(), &rec.configuration);
        assert!(
            cost_comp <= cost_plain * 1.1,
            "compressed recommendation degrades full-workload cost: {cost_comp} vs {cost_plain}"
        );
        assert!(constraints.check_configuration(o.schema(), &rec.configuration).is_ok());
    }

    #[test]
    fn invalid_epsilon_surfaces_as_error_not_panic() {
        let (o, w) = advisor_setup(4);
        let constraints = ConstraintSet::storage_fraction(o.schema(), 1.0);
        for bad in [-0.1, f64::NAN, f64::INFINITY] {
            let opts =
                CoPhyOptions { compression: CompressionPolicy::Epsilon(bad), ..Default::default() };
            let cophy = CoPhy::new(&o, opts);
            let err = cophy.try_tune(&w, &constraints).unwrap_err();
            assert!(err.contains("invalid compression ε"), "{err}");
            let cands = CGen::default().generate(o.schema(), &w).truncate(5);
            assert!(cophy.try_tune_with_candidates(&w, &cands, &constraints).is_err());
        }
    }

    #[test]
    fn infeasible_constraints_reported() {
        let (o, w) = advisor_setup(5);
        let candidates = CGen::default().generate(o.schema(), &w).truncate(5);
        // Require ≥ 3 indexes but allow at most 1 → infeasible.
        let cs = ConstraintSet::none()
            .with(Constraint::IndexCount { filter: IndexFilter::all(), cmp: Cmp::Ge, value: 3 })
            .with(Constraint::IndexCount { filter: IndexFilter::all(), cmp: Cmp::Le, value: 1 });
        let cophy = CoPhy::new(&o, CoPhyOptions::default());
        assert!(cophy.try_tune_with_candidates(&w, &candidates, &cs).is_err());
    }

    #[test]
    fn rich_constraints_route_to_branch_bound_and_hold() {
        let (o, w) = advisor_setup(6);
        let li = o.schema().table_by_name("lineitem").unwrap().id;
        let candidates = CGen::default().generate(o.schema(), &w).truncate(12);
        let cs = ConstraintSet::storage_fraction(o.schema(), 1.0).with(Constraint::IndexCount {
            filter: IndexFilter::on_table(li),
            cmp: Cmp::Le,
            value: 1,
        });
        let cophy = CoPhy::new(&o, CoPhyOptions::default());
        let rec = cophy.tune_with_candidates(&w, &candidates, &cs);
        let on_li = rec.configuration.on_table(li).count();
        assert!(on_li <= 1, "constraint violated: {on_li} lineitem indexes");
    }

    #[test]
    fn both_backends_stream_the_same_progress_contract() {
        let (o, w) = advisor_setup(8);
        let candidates = CGen::default().generate(o.schema(), &w).truncate(12);
        let inum = Inum::new(&o);
        let prepared = inum.prepare_workload(&w);
        let storage = ConstraintSet::storage_fraction(o.schema(), 0.3);
        for backend in [SolverBackend::Lagrangian, SolverBackend::BranchBound] {
            let cophy = CoPhy::new(&o, CoPhyOptions { backend, ..Default::default() });
            let mut events: Vec<SolveProgress> = Vec::new();
            let rec = cophy
                .try_tune_prepared_with_progress(
                    &prepared,
                    &candidates,
                    &storage,
                    Duration::ZERO,
                    0,
                    |p| events.push(*p),
                )
                .expect("feasible");
            assert!(!events.is_empty(), "{backend:?} must stream progress");
            let mut prev = f64::INFINITY;
            for e in &events {
                assert!(e.gap <= prev + 1e-12, "{backend:?} gap series must not regress");
                assert!(e.incumbent >= e.bound - 1e-9);
                prev = e.gap;
            }
            assert!(rec.gap.is_finite(), "{backend:?} must reach a finite gap");
        }
    }

    #[test]
    fn gap_trace_present_and_bounded() {
        let (o, w) = advisor_setup(20);
        let cophy = CoPhy::new(&o, CoPhyOptions::default());
        let rec = cophy.tune(&w, &ConstraintSet::storage_fraction(o.schema(), 0.5));
        assert!(!rec.trace.is_empty());
        assert!(rec.gap >= 0.0);
        assert!(rec.stats.n_candidates > 0);
        assert!(rec.stats.what_if_calls > 0, "INUM must have probed the optimizer");
    }

    use cophy_optimizer::{FaultInjectingBackend, FaultPlan, RetryPolicy};

    fn fast_retry(max_attempts: u32) -> RetryPolicy {
        RetryPolicy {
            max_attempts,
            base_backoff: Duration::from_micros(10),
            max_backoff: Duration::from_micros(50),
            ..Default::default()
        }
    }

    #[test]
    fn all_transient_faults_with_retries_match_fault_free_tune_bit_for_bit() {
        let (o, w) = advisor_setup(10);
        let constraints = ConstraintSet::storage_fraction(o.schema(), 0.5);
        let clean = CoPhy::new(&o, CoPhyOptions::default()).tune(&w, &constraints);
        assert!(clean.degradation.is_none(), "fault-free tune must carry no report");

        let faulty = FaultInjectingBackend::new(
            Box::new(WhatIfOptimizer::new(TpchGen::default().schema(), SystemProfile::A)),
            FaultPlan::transient_only(0xFA17, 0.4, 2),
        );
        let opts = CoPhyOptions { retry: fast_retry(4), ..Default::default() };
        let rec = CoPhy::new(&faulty, opts).tune(&w, &constraints);
        // Every transient schedule is exhausted below max_attempts, so the
        // prepared workload — and therefore the whole tune — is bit-identical.
        assert_eq!(rec.objective.to_bits(), clean.objective.to_bits());
        assert_eq!(rec.configuration, clean.configuration);
        let d = rec.degradation.expect("recovered faults must still be reported");
        assert!(d.probes_recovered > 0, "schedule must have fired");
        assert_eq!(d.probes_substituted, 0);
        assert_eq!(d.statements_degraded, 0);
        assert_eq!(d.coverage, 1.0);
        assert_eq!(d.worst_case_inflation, 0.0);
    }

    #[test]
    fn permanent_faults_degrade_with_bounded_inflation() {
        let (o, w) = advisor_setup(12);
        let constraints = ConstraintSet::storage_fraction(o.schema(), 0.5);
        let clean = CoPhy::new(&o, CoPhyOptions::default()).tune(&w, &constraints);

        let faulty = FaultInjectingBackend::new(
            Box::new(WhatIfOptimizer::new(TpchGen::default().schema(), SystemProfile::A)),
            FaultPlan { permanent_rate: 0.15, ..FaultPlan::transient_only(0xDE6, 0.3, 1) },
        );
        let opts = CoPhyOptions { retry: fast_retry(3), min_coverage: 0.0, ..Default::default() };
        let rec = CoPhy::new(&faulty, opts).tune(&w, &constraints);
        let d = rec.degradation.expect("permanent faults must degrade the tune");
        assert!(d.probes_substituted > 0, "some probes must be lost for this seed");
        assert!(d.coverage < 1.0 && d.coverage > 0.0, "coverage {}", d.coverage);
        assert!(d.worst_case_inflation > 0.0 && d.worst_case_inflation <= 1.0);
        // Lost templates only overestimate: the degraded objective is a valid
        // upper bound, and within the report's advertised inflation of the
        // fault-free objective.
        assert!(rec.objective + 1e-6 >= clean.bound, "degradation must stay sound");
        assert!(
            rec.objective <= clean.objective * (1.0 + d.worst_case_inflation) + 1e-6,
            "objective {} exceeds advertised inflation bound over {}",
            rec.objective,
            clean.objective
        );
    }

    #[test]
    fn coverage_floor_turns_heavy_degradation_into_typed_error() {
        let (o, w) = advisor_setup(8);
        let constraints = ConstraintSet::storage_fraction(o.schema(), 0.5);
        let faulty = FaultInjectingBackend::new(
            Box::new(WhatIfOptimizer::new(TpchGen::default().schema(), SystemProfile::A)),
            FaultPlan { permanent_rate: 0.6, ..FaultPlan::transient_only(0xF100D, 0.2, 1) },
        );
        let opts = CoPhyOptions { retry: fast_retry(2), min_coverage: 0.999, ..Default::default() };
        let err = CoPhy::new(&faulty, opts)
            .try_tune(&w, &constraints)
            .expect_err("60% permanent faults cannot clear a 0.999 coverage floor");
        assert!(err.contains("coverage"), "floor error must name coverage: {err}");
    }
}
