//! # cophy
//!
//! A Rust implementation of **CoPhy** — *A Scalable, Portable, and
//! Interactive Index Advisor for Large Workloads* (Dash, Polyzotis,
//! Ailamaki; PVLDB 4(6), 2011).
//!
//! CoPhy's insight: when query costs come from a fast what-if layer (INUM),
//! the index tuning problem *is* a compact binary integer program (Theorem
//! 1), with one variable per candidate index rather than one per index-set.
//! Everything else — constraints, soft constraints, anytime feedback,
//! interactive re-tuning — rides on mature BIP machinery.
//!
//! ## Quick start
//!
//! ```
//! use cophy::{CoPhy, ConstraintSet, CoPhyOptions};
//! use cophy_catalog::TpchGen;
//! use cophy_optimizer::{SystemProfile, WhatIfOptimizer};
//! use cophy_workload::HomGen;
//!
//! let optimizer = WhatIfOptimizer::new(TpchGen::default().schema(), SystemProfile::A);
//! let workload = HomGen::new(1).generate(optimizer.schema(), 20);
//! let cophy = CoPhy::new(&optimizer, CoPhyOptions::default());
//! // storage budget = 0.5 × data size
//! let constraints = ConstraintSet::storage_fraction(optimizer.schema(), 0.5);
//! let rec = cophy.tune(&workload, &constraints);
//! assert!(rec.objective <= rec.baseline_cost * 1.0 + 1e-6);
//! println!("{} indexes, gap {:.1}%", rec.configuration.len(), rec.gap * 100.0);
//! ```
//!
//! ## Architecture (paper Figure 2)
//!
//! | Paper component | Here |
//! |---|---|
//! | workload compression | [`cophy_compress::CompressedWorkload`] (pre-INUM clustering, [`CoPhyOptions::compression`]) |
//! | INUM            | [`cophy_inum::Inum`] |
//! | CGen            | [`cgen::CGen`] |
//! | BIPGen          | [`bipgen::BipGen`] |
//! | Solver          | [`solver::Solver`] (Lagrangian `relax(B)` + B&B backends) |
//! | soft constraints| [`soft::ChordExplorer`] (Pareto frontier via the Chord algorithm) |
//! | interactive     | [`session::TuningSession`] (warm-started deltas) |

pub mod bipgen;
pub mod cgen;
pub mod constraints;
pub mod session;
pub mod soft;
pub mod solver;

pub use bipgen::{BipGen, BipMapping, TuningProblem};
pub use cgen::{CGen, CandidateSet};
pub use constraints::{Cmp, Constraint, ConstraintSet, IndexFilter};
pub use session::{SweepPoint, TuningSession, WhatIfAnswer};
pub use soft::{ChordExplorer, ParetoPoint};
pub use solver::{CoPhy, CoPhyOptions, Recommendation, SolveStats, SolverBackend};

// The shared anytime solve engine's budget/progress vocabulary, re-exported
// so advisor-level callers need not depend on `cophy_bip` directly.
pub use cophy_bip::{SolveBudget, SolveProgress};

// The workload-compression subsystem's vocabulary, re-exported so callers
// can set `CoPhyOptions::compression` and read `Recommendation::compression`
// without depending on `cophy_compress` directly.
pub use cophy_compress::{Absorption, CompressedWorkload, CompressionPolicy, CompressionSummary};
