//! # cophy
//!
//! A Rust implementation of **CoPhy** — *A Scalable, Portable, and
//! Interactive Index Advisor for Large Workloads* (Dash, Polyzotis,
//! Ailamaki; PVLDB 4(6), 2011).
//!
//! CoPhy's insight: when query costs come from a fast what-if layer (INUM),
//! the index tuning problem *is* a compact binary integer program (Theorem
//! 1), with one variable per candidate index rather than one per index-set.
//! Everything else — constraints, soft constraints, anytime feedback,
//! interactive re-tuning — rides on mature BIP machinery.
//!
//! ## Quick start
//!
//! ```
//! use cophy::{CoPhy, ConstraintSet, CoPhyOptions};
//! use cophy_catalog::TpchGen;
//! use cophy_optimizer::{SystemProfile, WhatIfOptimizer};
//! use cophy_workload::HomGen;
//!
//! let optimizer = WhatIfOptimizer::new(TpchGen::default().schema(), SystemProfile::A);
//! let workload = HomGen::new(1).generate(optimizer.schema(), 20);
//! let cophy = CoPhy::new(&optimizer, CoPhyOptions::default());
//! // storage budget = 0.5 × data size
//! let constraints = ConstraintSet::storage_fraction(optimizer.schema(), 0.5);
//! let rec = cophy.tune(&workload, &constraints);
//! assert!(rec.objective <= rec.baseline_cost * 1.0 + 1e-6);
//! println!("{} indexes, gap {:.1}%", rec.configuration.len(), rec.gap * 100.0);
//! ```
//!
//! ## Streaming large workloads
//!
//! Million-statement workloads never need to be materialized: any
//! [`cophy_workload::WorkloadSource`] (generator streams, file readers,
//! query-log tailers) feeds the advisor chunk by chunk, compression
//! clusters **online** (resident state ∝ representatives, not `|W|`), and
//! the Lagrangian backend solves the per-statement blocks in parallel:
//!
//! ```
//! use cophy::{CoPhy, CoPhyOptions, CompressionPolicy, ConstraintSet};
//! use cophy_catalog::TpchGen;
//! use cophy_optimizer::{SystemProfile, WhatIfOptimizer};
//! use cophy_workload::HomGen;
//!
//! let optimizer = WhatIfOptimizer::new(TpchGen::default().schema(), SystemProfile::A);
//! // A generator-backed source: statements are produced on demand, chunk
//! // by chunk — the full workload never exists in memory.
//! let mut source = HomGen::new(1).stream(optimizer.schema(), 500);
//! let options =
//!     CoPhyOptions { compression: CompressionPolicy::default_epsilon(), ..Default::default() };
//! let cophy = CoPhy::new(&optimizer, options);
//! let constraints = ConstraintSet::storage_fraction(optimizer.schema(), 0.5);
//! let rec = cophy.try_tune_source(&mut source, &constraints).unwrap();
//! let summary = rec.compression.as_ref().unwrap();
//! assert_eq!(summary.n_original, 500);
//! assert!(summary.n_representatives < 500);
//! ```
//!
//! ## Architecture (paper Figure 2)
//!
//! | Paper component | Here |
//! |---|---|
//! | workload compression | [`cophy_compress::CompressedWorkload`] (pre-INUM clustering, [`CoPhyOptions::compression`]) |
//! | INUM            | [`cophy_inum::Inum`] |
//! | CGen            | [`cgen::CGen`] |
//! | BIPGen          | [`bipgen::BipGen`] |
//! | Solver          | [`solver::Solver`] (Lagrangian `relax(B)` + B&B backends) |
//! | soft constraints| [`soft::ChordExplorer`] (Pareto frontier via the Chord algorithm) |
//! | interactive     | [`session::TuningSession`] (warm-started deltas) |
//!
//! ## Backends & portability
//!
//! The paper's portability claim — CoPhy works against *any* DBMS that can
//! answer what-if questions — is a trait seam here: every layer above the
//! optimizer (INUM, `CoPhy`, [`TuningSession`], the baseline advisors) sees
//! only [`WhatIfBackend`].  The contract is three accessors (`schema`,
//! `profile`, `cost_model`), one probe (`probe(query, configuration) →
//! ProbeAnswer`: total cost, internal cost, per-table leaf column
//! requirements), and call accounting (`what_if_calls`,
//! `reset_call_counter`); everything else (statement costing, update
//! pricing, workload totals) is derived analytically in provided methods so
//! update semantics stay identical across backends.  Three implementations
//! ship:
//!
//! * [`cophy_optimizer::WhatIfOptimizer`] — the live analytic optimizer;
//! * [`cophy_optimizer::TraceRecorder`] / [`cophy_optimizer::TraceReplay`] —
//!   record a tune's probe answers to text, then replay them bit-identically
//!   with zero optimizer work (the CI backend-swap smoke);
//! * [`cophy_optimizer::NoisyBackend`] — deterministic calibrated noise on
//!   top of any inner backend, for robustness studies.
//!
//! Wiring a custom backend into a session is just passing the trait object:
//!
//! ```
//! use cophy::{CoPhy, CoPhyOptions, ConstraintSet};
//! use cophy_catalog::TpchGen;
//! use cophy_optimizer::{NoisyBackend, SystemProfile, WhatIfBackend, WhatIfOptimizer};
//! use cophy_workload::HomGen;
//!
//! let live = WhatIfOptimizer::new(TpchGen::default().schema(), SystemProfile::A);
//! // Any `WhatIfBackend` drives the whole stack — here the noise wrapper.
//! let backend = NoisyBackend::new(&live, 0.05, 7);
//! let w = HomGen::new(1).generate(backend.schema(), 8);
//! let cophy = CoPhy::new(&backend, CoPhyOptions::default());
//! let mut session = cophy.session(&w, ConstraintSet::storage_fraction(backend.schema(), 0.5));
//! let rec = session.recommend();
//! assert!(rec.objective <= rec.baseline_cost + 1e-6);
//! // The same model is exportable for external solvers:
//! let mps = session.export_mps();
//! assert!(cophy_bip::lint_mps(&mps).is_ok());
//! ```
//!
//! Sessions over the same workload can also share one INUM cost service:
//! [`CoPhy::try_session_shared`] accepts the [`cophy_inum::InumCache`]
//! handle of an existing session ([`TuningSession::cache`]), so concurrent
//! readers reuse every cached plan instead of re-probing the backend.

pub mod bipgen;
pub mod cgen;
pub mod constraints;
pub mod session;
pub mod soft;
pub mod solver;

pub use bipgen::{BipGen, BipMapping, TuningProblem};
pub use cgen::{CGen, CandidateSet};
pub use constraints::{Cmp, Constraint, ConstraintSet, IndexFilter};
pub use session::{SweepPoint, TuningSession, WhatIfAnswer};
pub use soft::{ChordExplorer, ParetoPoint};
pub use solver::{
    CoPhy, CoPhyOptions, DegradationReport, Recommendation, SolveStats, SolverBackend,
};

// The shared anytime solve engine's budget/progress vocabulary, re-exported
// so advisor-level callers need not depend on `cophy_bip` directly.
pub use cophy_bip::{DecompositionProgress, SolveBudget, SolveProgress};

// The backend seam's vocabulary (see "Backends & portability" above),
// re-exported so custom-backend authors and cache-sharing callers need not
// depend on `cophy_optimizer`/`cophy_inum` directly.
pub use cophy_inum::InumCache;
pub use cophy_optimizer::{
    NoisyBackend, ProbeAnswer, ProbeLeaf, TraceRecorder, TraceReplay, WhatIfBackend,
};

// The workload-compression subsystem's vocabulary, re-exported so callers
// can set `CoPhyOptions::compression` and read `Recommendation::compression`
// without depending on `cophy_compress` directly.
pub use cophy_compress::{Absorption, CompressedWorkload, CompressionPolicy, CompressionSummary};

// The streaming-ingestion vocabulary (see "Streaming large workloads"
// above): implement `WorkloadSource` to feed `CoPhy::try_tune_source` /
// `TuningSession::try_add_source` without materializing the workload.
pub use cophy_workload::{WorkloadSource, DEFAULT_CHUNK};
