//! INUM preparation: the few what-if calls that build the template cache.
//!
//! For each query we probe the optimizer with *ideal configurations* (see
//! [`crate::ideal`]) — one per combination of exploited interesting orders —
//! plus one probe under the empty configuration, whose plan sorts/hashes
//! everything and therefore yields a template with *no* slot requirements
//! (guaranteeing `cost(q, X) < ∞` for every `X`, including `X = ∅`).
//!
//! Combinations are enumerated in increasing complexity (none, singles,
//! pairs) and capped: template counts `K_q` stay small — the paper observes
//! `Σ_q K_q` grows roughly linearly with the workload — while still covering
//! the merge-join templates that need orders on *two* tables at once.

use std::time::Instant;

use cophy_catalog::{ColumnId, Configuration, Schema};
use cophy_compress::CompressedWorkload;
use cophy_optimizer::backend::{query_fingerprint, statement_fingerprint};
use cophy_optimizer::{
    probe_with_retry, BackendError, FaultLog, ProbeAnswer, RetryPolicy, WhatIfBackend,
};
use cophy_workload::{Query, QueryId, Statement, UpdateStatement, Workload};

use crate::ideal::ideal_config;
use crate::template::{Slot, TemplatePlan};

/// Cap on probing calls per query (1 empty + singles + pairs up to this).
pub const MAX_PROBES_PER_QUERY: usize = 48;

/// The INUM layer wrapping any what-if backend.
#[derive(Debug)]
pub struct Inum<'o> {
    opt: &'o dyn WhatIfBackend,
    /// Retry policy of the *resilient* preparation paths.  The plain paths
    /// never retry regardless (one failure is one error), so the default
    /// [`RetryPolicy::none`] keeps every legacy path bit-identical.
    retry: RetryPolicy,
}

/// A query with its cached template plans — the unit CoPhy's BIP generator
/// and the fast cost function consume.
#[derive(Debug, Clone)]
pub struct PreparedQuery {
    pub qid: QueryId,
    pub weight: f64,
    /// The read shell (SELECT body or UPDATE query shell).
    pub query: Query,
    /// `TPlans(q)`: deduplicated template plans, cheapest-β first.
    pub templates: Vec<TemplatePlan>,
    /// For UPDATE statements: the statement (for `ucost`) and its row count.
    pub update: Option<(UpdateStatement, f64)>,
    /// The fixed `c_q` base-table update cost (0 for SELECTs).
    pub fixed_update_cost: f64,
}

/// A fully prepared workload.
#[derive(Debug, Clone)]
pub struct PreparedWorkload {
    pub queries: Vec<PreparedQuery>,
    /// Number of what-if optimizer calls spent preparing.
    pub what_if_calls: u64,
}

/// One statement whose preparation lost probes to exhausted retries.
#[derive(Debug, Clone, PartialEq)]
pub struct DegradedStatement {
    pub qid: QueryId,
    pub weight: f64,
    /// Ideal-configuration probes dropped after retry exhaustion.  Sound but
    /// lossy: the empty-configuration template instantiates under every `X`,
    /// so a missing template can only *overestimate* costs.
    pub skipped_probes: u32,
    /// The empty-configuration probe itself was lost; the statement's
    /// templates were substituted (from the fallback cache when available,
    /// else by the analytic atomic-configuration template).
    pub substituted: bool,
    /// The substitution came from a previously prepared workload.
    pub from_cache: bool,
}

/// The typed fault account of one resilient preparation: the probe-level
/// [`FaultLog`] plus per-statement degradation detail (qid order).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PrepFaultReport {
    pub log: FaultLog,
    pub degraded: Vec<DegradedStatement>,
}

impl PrepFaultReport {
    /// True when nothing failed and nothing was degraded — the prepared
    /// workload is bit-identical to a fault-free preparation.
    pub fn is_clean(&self) -> bool {
        self.log.is_clean() && self.degraded.is_empty()
    }
}

/// Per-statement fault outcome, merged into [`PrepFaultReport`] in qid order.
#[derive(Debug, Clone, Default)]
struct StatementFaults {
    log: FaultLog,
    skipped_probes: u32,
    substituted: bool,
    from_cache: bool,
}

impl<'o> Inum<'o> {
    pub fn new(opt: &'o dyn WhatIfBackend) -> Self {
        Inum { opt, retry: RetryPolicy::none() }
    }

    /// An INUM layer whose *resilient* preparation paths retry transient
    /// probe failures per `retry`.
    pub fn with_retry(opt: &'o dyn WhatIfBackend, retry: RetryPolicy) -> Self {
        Inum { opt, retry }
    }

    pub fn optimizer(&self) -> &'o dyn WhatIfBackend {
        self.opt
    }

    pub fn retry_policy(&self) -> &RetryPolicy {
        &self.retry
    }

    /// Prepare a single statement.  Panics on [`BackendError`]; fallible
    /// callers (quota-metered or replayed backends) use
    /// [`Inum::try_prepare_statement`].
    pub fn prepare_statement(&self, qid: QueryId, stmt: &Statement, weight: f64) -> PreparedQuery {
        self.try_prepare_statement(qid, stmt, weight)
            .unwrap_or_else(|e| panic!("what-if backend error: {e}"))
    }

    /// Fallible single-statement preparation: probe failures (replay misses,
    /// exhausted what-if quotas) surface as typed errors instead of panics.
    pub fn try_prepare_statement(
        &self,
        qid: QueryId,
        stmt: &Statement,
        weight: f64,
    ) -> Result<PreparedQuery, BackendError> {
        let q = stmt.read_shell().clone();
        let templates = self.try_extract_templates(&q)?;
        let (update, fixed) = match stmt {
            Statement::Select(_) => (None, 0.0),
            Statement::Update(u) => {
                let rows = cophy_optimizer::cardinality::access_rows(
                    self.opt.schema(),
                    &u.shell,
                    u.table(),
                );
                (Some((u.clone(), rows)), self.opt.base_update_cost(u))
            }
        };
        Ok(PreparedQuery { qid, weight, query: q, templates, update, fixed_update_cost: fixed })
    }

    /// Prepare every statement of `w` (sequentially; callers may shard the
    /// workload across threads — `PreparedQuery` is `Send`).
    pub fn prepare_workload(&self, w: &Workload) -> PreparedWorkload {
        self.try_prepare_workload(w).unwrap_or_else(|e| panic!("what-if backend error: {e}"))
    }

    /// Fallible [`Inum::prepare_workload`].
    pub fn try_prepare_workload(&self, w: &Workload) -> Result<PreparedWorkload, BackendError> {
        let before = self.opt.what_if_calls();
        let queries = w
            .iter()
            .map(|(qid, stmt, weight)| self.try_prepare_statement(qid, stmt, weight))
            .collect::<Result<_, _>>()?;
        Ok(PreparedWorkload { queries, what_if_calls: self.opt.what_if_calls() - before })
    }

    /// [`Inum::prepare_workload`] sharded across OS threads — the probing
    /// calls are independent per statement, so preparation parallelizes
    /// embarrassingly.  The result is byte-identical to the sequential
    /// preparation (shards are re-sorted by statement id).
    pub fn prepare_workload_parallel(&self, w: &Workload) -> PreparedWorkload {
        self.try_prepare_workload_parallel(w)
            .unwrap_or_else(|e| panic!("what-if backend error: {e}"))
    }

    /// Fallible [`Inum::prepare_workload_parallel`]: the first shard error
    /// (by statement id) is reported, matching the sequential order.
    pub fn try_prepare_workload_parallel(
        &self,
        w: &Workload,
    ) -> Result<PreparedWorkload, BackendError> {
        let n_threads = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(4);
        let ids: Vec<_> = w.iter().collect();
        let chunks: Vec<_> = ids.chunks(ids.len().div_ceil(n_threads).max(1)).collect();
        let before = self.opt.what_if_calls();
        let queries_by_chunk = std::thread::scope(|s| {
            let handles: Vec<_> = chunks
                .iter()
                .map(|chunk| {
                    s.spawn(move || {
                        chunk
                            .iter()
                            .map(|(qid, stmt, weight)| {
                                self.try_prepare_statement(*qid, stmt, *weight)
                            })
                            .collect::<Result<Vec<_>, _>>()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("INUM shard")).collect::<Vec<_>>()
        });
        let mut queries = Vec::with_capacity(w.len());
        for shard in queries_by_chunk {
            queries.append(&mut shard?);
        }
        queries.sort_by_key(|pq| pq.qid);
        Ok(PreparedWorkload { queries, what_if_calls: self.opt.what_if_calls() - before })
    }

    /// Prepare only the *representatives* of a compressed workload: the
    /// cluster weights ride along as `PreparedQuery::weight`, so every
    /// cached plan cost downstream (the BIP objective, the fast workload
    /// cost) is scaled to stand in for the whole cluster.  What-if calls are
    /// spent per representative, not per original statement.
    pub fn prepare_compressed(&self, cw: &CompressedWorkload) -> PreparedWorkload {
        self.prepare_workload(cw.representatives())
    }

    /// Fallible [`Inum::prepare_compressed`].
    pub fn try_prepare_compressed(
        &self,
        cw: &CompressedWorkload,
    ) -> Result<PreparedWorkload, BackendError> {
        self.try_prepare_workload(cw.representatives())
    }

    /// [`Inum::prepare_compressed`] sharded across OS threads.
    pub fn prepare_compressed_parallel(&self, cw: &CompressedWorkload) -> PreparedWorkload {
        self.prepare_workload_parallel(cw.representatives())
    }

    /// Fallible [`Inum::prepare_compressed_parallel`].
    pub fn try_prepare_compressed_parallel(
        &self,
        cw: &CompressedWorkload,
    ) -> Result<PreparedWorkload, BackendError> {
        self.try_prepare_workload_parallel(cw.representatives())
    }

    /// Resilient preparation: transient probe failures are retried per the
    /// policy this layer was built with ([`Inum::with_retry`]); a probe that
    /// exhausts its retries *degrades* the statement instead of aborting the
    /// preparation — a lost ideal-configuration probe skips that template
    /// (costs only overestimated), a lost empty-configuration probe
    /// substitutes the statement's templates from `fallback` (a previously
    /// prepared workload, e.g. a shared-cache snapshot) or, failing that,
    /// the analytic atomic-configuration template.  Non-retryable errors
    /// (replay misses, spent quotas) still abort: retrying or degrading
    /// would mask a configuration problem.
    pub fn try_prepare_workload_resilient(
        &self,
        w: &Workload,
        fallback: Option<&PreparedWorkload>,
    ) -> Result<(PreparedWorkload, PrepFaultReport), BackendError> {
        let prep_deadline = self.retry.prep_budget.map(|b| Instant::now() + b);
        let before = self.opt.what_if_calls();
        let mut queries = Vec::with_capacity(w.len());
        let mut report = PrepFaultReport::default();
        for (qid, stmt, weight) in w.iter() {
            let (pq, faults) =
                self.try_prepare_statement_resilient(qid, stmt, weight, fallback, prep_deadline)?;
            merge_faults(&mut report, &pq, faults);
            queries.push(pq);
        }
        let pw = PreparedWorkload { queries, what_if_calls: self.opt.what_if_calls() - before };
        Ok((pw, report))
    }

    /// [`Inum::try_prepare_workload_resilient`] sharded across OS threads.
    /// Fault schedules keyed per `(query, configuration)` pair are
    /// interleaving-independent, so the prepared workload *and* the fault
    /// report are byte-identical to the sequential resilient preparation
    /// (shards re-sorted by statement id before merging).
    pub fn try_prepare_workload_resilient_parallel(
        &self,
        w: &Workload,
        fallback: Option<&PreparedWorkload>,
    ) -> Result<(PreparedWorkload, PrepFaultReport), BackendError> {
        let prep_deadline = self.retry.prep_budget.map(|b| Instant::now() + b);
        let n_threads = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(4);
        let ids: Vec<_> = w.iter().collect();
        let chunks: Vec<_> = ids.chunks(ids.len().div_ceil(n_threads).max(1)).collect();
        let before = self.opt.what_if_calls();
        let by_chunk = std::thread::scope(|s| {
            let handles: Vec<_> = chunks
                .iter()
                .map(|chunk| {
                    s.spawn(move || {
                        chunk
                            .iter()
                            .map(|(qid, stmt, weight)| {
                                self.try_prepare_statement_resilient(
                                    *qid,
                                    stmt,
                                    *weight,
                                    fallback,
                                    prep_deadline,
                                )
                            })
                            .collect::<Result<Vec<_>, _>>()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("INUM shard")).collect::<Vec<_>>()
        });
        let mut pairs = Vec::with_capacity(w.len());
        for shard in by_chunk {
            pairs.append(&mut shard?);
        }
        pairs.sort_by_key(|(pq, _)| pq.qid);
        let mut queries = Vec::with_capacity(pairs.len());
        let mut report = PrepFaultReport::default();
        for (pq, faults) in pairs {
            merge_faults(&mut report, &pq, faults);
            queries.push(pq);
        }
        let pw = PreparedWorkload { queries, what_if_calls: self.opt.what_if_calls() - before };
        Ok((pw, report))
    }

    /// Resilient [`Inum::try_prepare_compressed`]: representatives only.
    pub fn try_prepare_compressed_resilient(
        &self,
        cw: &CompressedWorkload,
        fallback: Option<&PreparedWorkload>,
    ) -> Result<(PreparedWorkload, PrepFaultReport), BackendError> {
        self.try_prepare_workload_resilient(cw.representatives(), fallback)
    }

    /// Resilient [`Inum::try_prepare_compressed_parallel`].
    pub fn try_prepare_compressed_resilient_parallel(
        &self,
        cw: &CompressedWorkload,
        fallback: Option<&PreparedWorkload>,
    ) -> Result<(PreparedWorkload, PrepFaultReport), BackendError> {
        self.try_prepare_workload_resilient_parallel(cw.representatives(), fallback)
    }

    /// Resilient single-statement preparation (see
    /// [`Inum::try_prepare_workload_resilient`] for the degradation rules).
    fn try_prepare_statement_resilient(
        &self,
        qid: QueryId,
        stmt: &Statement,
        weight: f64,
        fallback: Option<&PreparedWorkload>,
        prep_deadline: Option<Instant>,
    ) -> Result<(PreparedQuery, StatementFaults), BackendError> {
        let q = stmt.read_shell().clone();
        let mut faults = StatementFaults::default();
        let templates =
            self.try_extract_templates_resilient(&q, stmt, fallback, prep_deadline, &mut faults)?;
        let (update, fixed) = match stmt {
            Statement::Select(_) => (None, 0.0),
            Statement::Update(u) => {
                let rows = cophy_optimizer::cardinality::access_rows(
                    self.opt.schema(),
                    &u.shell,
                    u.table(),
                );
                (Some((u.clone(), rows)), self.opt.base_update_cost(u))
            }
        };
        let pq =
            PreparedQuery { qid, weight, query: q, templates, update, fixed_update_cost: fixed };
        Ok((pq, faults))
    }

    /// The resilient probing loop: every probe goes through
    /// [`probe_with_retry`]; exhausted retries degrade per the rules above.
    fn try_extract_templates_resilient(
        &self,
        q: &Query,
        stmt: &Statement,
        fallback: Option<&PreparedWorkload>,
        prep_deadline: Option<Instant>,
        faults: &mut StatementFaults,
    ) -> Result<Vec<TemplatePlan>, BackendError> {
        let schema = self.opt.schema();
        let cm = self.opt.cost_model();
        let stmt_fp = statement_fingerprint(stmt);
        let mut templates: Vec<TemplatePlan> = Vec::new();

        let probe =
            probe_with_retry(self.opt, &self.retry, q, &Configuration::empty(), prep_deadline);
        faults.log.record(stmt_fp, &probe);
        match probe.result {
            Ok(base) => push_template(&mut templates, extract(schema, cm, q, &base)),
            Err(e) if e.is_retryable() => {
                faults.substituted = true;
                let qfp = query_fingerprint(q);
                if let Some(prev) = fallback
                    .and_then(|pw| pw.queries.iter().find(|pq| query_fingerprint(&pq.query) == qfp))
                {
                    // A previously prepared twin: reuse its whole template
                    // set, skip every further probe of this statement.
                    faults.from_cache = true;
                    return Ok(prev.templates.clone());
                }
                push_template(&mut templates, atomic_fallback_template(schema, cm, q));
            }
            Err(e) => return Err(e),
        }

        for combo in ideal_combos(q) {
            let refs: Vec<&[ColumnId]> = combo.iter().map(Vec::as_slice).collect();
            let cfg = ideal_config(schema, q, &refs);
            let probe = probe_with_retry(self.opt, &self.retry, q, &cfg, prep_deadline);
            faults.log.record(stmt_fp, &probe);
            match probe.result {
                Ok(ans) => push_template(&mut templates, extract(schema, cm, q, &ans)),
                Err(e) if e.is_retryable() => faults.skipped_probes += 1,
                Err(e) => return Err(e),
            }
        }

        templates.sort_by(|a, b| a.internal_cost.total_cmp(&b.internal_cost));
        Ok(templates)
    }

    /// The probing loop: empty-config probe + ideal-config probes.
    fn try_extract_templates(&self, q: &Query) -> Result<Vec<TemplatePlan>, BackendError> {
        let schema = self.opt.schema();
        let cm = self.opt.cost_model();
        let mut templates: Vec<TemplatePlan> = Vec::new();

        // Probe 1: empty configuration → the all-sort/hash template.  Its
        // slots never carry requirements (heap scans deliver no order).
        let base = self.opt.try_probe(q, &Configuration::empty())?;
        push_template(&mut templates, extract(schema, cm, q, &base));

        for combo in ideal_combos(q) {
            let refs: Vec<&[ColumnId]> = combo.iter().map(Vec::as_slice).collect();
            let cfg = ideal_config(schema, q, &refs);
            let ans = self.opt.try_probe(q, &cfg)?;
            push_template(&mut templates, extract(schema, cm, q, &ans));
        }

        templates.sort_by(|a, b| a.internal_cost.total_cmp(&b.internal_cost));
        Ok(templates)
    }
}

/// The ideal-configuration combination stream of one query: all-none,
/// singles, pairs of per-table interesting orders (capped at
/// [`MAX_PROBES_PER_QUERY`]).  Shared by the plain and resilient probing
/// loops so their probe sequences — and therefore any fault schedule keyed
/// on them — are identical.
fn ideal_combos(q: &Query) -> Vec<Vec<Vec<ColumnId>>> {
    let per_table: Vec<Vec<Vec<ColumnId>>> =
        q.tables.iter().map(|t| q.interesting_orders_on(*t)).collect();
    let n = q.tables.len();
    let mut combos: Vec<Vec<Vec<ColumnId>>> = Vec::new();
    combos.push(vec![Vec::new(); n]);
    for i in 0..n {
        for o in &per_table[i] {
            let mut c = vec![Vec::new(); n];
            c[i] = o.clone();
            combos.push(c);
        }
    }
    'outer: for i in 0..n {
        for j in (i + 1)..n {
            for oi in &per_table[i] {
                for oj in &per_table[j] {
                    if combos.len() >= MAX_PROBES_PER_QUERY {
                        break 'outer;
                    }
                    let mut c = vec![Vec::new(); n];
                    c[i] = oi.clone();
                    c[j] = oj.clone();
                    combos.push(c);
                }
            }
        }
    }
    combos
}

/// The analytic atomic-configuration template substituted when even the
/// empty-configuration probe is lost: every slot takes the heap path (no
/// order requirements, so it instantiates under every `X`) and the internal
/// cost is zero — the statement is costed by its leaf accesses alone.  The
/// substitution keeps the BIP finite and feasible; its weighted share is
/// what [`DegradedStatement`] reports upward as cost-bound inflation.
fn atomic_fallback_template(
    schema: &Schema,
    cm: &cophy_optimizer::CostModel,
    q: &Query,
) -> TemplatePlan {
    let slots = q
        .tables
        .iter()
        .map(|&t| Slot {
            table: t,
            required: Vec::new(),
            heap_cost: Some(cophy_optimizer::access::heap_path(schema, cm, q, t, None).cost),
        })
        .collect();
    TemplatePlan { internal_cost: 0.0, slots }
}

/// Fold one statement's fault outcome into the preparation report.
fn merge_faults(report: &mut PrepFaultReport, pq: &PreparedQuery, faults: StatementFaults) {
    if faults.skipped_probes > 0 || faults.substituted {
        report.degraded.push(DegradedStatement {
            qid: pq.qid,
            weight: pq.weight,
            skipped_probes: faults.skipped_probes,
            substituted: faults.substituted,
            from_cache: faults.from_cache,
        });
    }
    report.log.absorb(faults.log);
}

/// Turn a probe answer into a template: β = internal cost, slots carry the
/// order requirements the plan imposes on its leaves (§3 / Appendix A).
/// The heap fallback `γ` is analytic — no backend involvement.
fn extract(
    schema: &Schema,
    cm: &cophy_optimizer::CostModel,
    q: &Query,
    ans: &ProbeAnswer,
) -> TemplatePlan {
    let mut slots = Vec::with_capacity(q.tables.len());
    for leaf in &ans.leaves {
        let heap_cost = if leaf.required.is_empty() {
            Some(cophy_optimizer::access::heap_path(schema, cm, q, leaf.table, None).cost)
        } else {
            None
        };
        slots.push(Slot { table: leaf.table, required: leaf.required.clone(), heap_cost });
    }
    TemplatePlan { internal_cost: ans.internal_cost, slots }
}

/// Deduplicate by slot signature, keeping the cheaper internal cost.
fn push_template(templates: &mut Vec<TemplatePlan>, tpl: TemplatePlan) {
    if let Some(existing) = templates.iter_mut().find(|t| t.signature() == tpl.signature()) {
        if tpl.internal_cost < existing.internal_cost {
            existing.internal_cost = tpl.internal_cost;
            existing.slots = tpl.slots;
        }
    } else {
        templates.push(tpl);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cophy_catalog::TpchGen;
    use cophy_optimizer::{SystemProfile, WhatIfOptimizer};
    use cophy_workload::{HetGen, HomGen};

    fn opt() -> WhatIfOptimizer {
        WhatIfOptimizer::new(TpchGen::default().schema(), SystemProfile::A)
    }

    #[test]
    fn every_query_has_an_unconstrained_template() {
        let o = opt();
        let inum = Inum::new(&o);
        let w = HomGen::new(2).generate(o.schema(), 30);
        let pw = inum.prepare_workload(&w);
        for pq in &pw.queries {
            assert!(
                pq.templates.iter().any(|t| t.slots.iter().all(|s| s.required.is_empty())),
                "query {:?} lacks an I∅-instantiable template",
                pq.qid
            );
            assert!(!pq.templates.is_empty());
        }
    }

    #[test]
    fn probe_counts_are_bounded() {
        let o = opt();
        let inum = Inum::new(&o);
        let w = HomGen::new(2).generate(o.schema(), 20);
        let pw = inum.prepare_workload(&w);
        let per_query = pw.what_if_calls as f64 / 20.0;
        assert!(
            per_query <= (MAX_PROBES_PER_QUERY + 1) as f64,
            "too many probes per query: {per_query}"
        );
    }

    #[test]
    fn templates_deduplicated() {
        let o = opt();
        let inum = Inum::new(&o);
        let w = HetGen::new(6).generate(o.schema(), 25);
        let pw = inum.prepare_workload(&w);
        for pq in &pw.queries {
            let mut sigs: Vec<_> = pq.templates.iter().map(|t| t.signature()).collect();
            let before = sigs.len();
            sigs.sort();
            sigs.dedup();
            assert_eq!(before, sigs.len(), "duplicate template signatures");
        }
    }

    #[test]
    fn parallel_prepare_is_byte_identical_to_sequential() {
        let o = opt();
        let inum = Inum::new(&o);
        let w = HetGen::new(12).generate(o.schema(), 16);
        let par = inum.prepare_workload_parallel(&w);
        let seq = inum.prepare_workload(&w);
        assert_eq!(par.queries.len(), seq.queries.len());
        assert_eq!(par.what_if_calls, seq.what_if_calls);
        for (a, b) in par.queries.iter().zip(seq.queries.iter()) {
            assert_eq!(a.qid, b.qid);
            assert_eq!(a.weight.to_bits(), b.weight.to_bits());
            assert_eq!(a.templates.len(), b.templates.len());
            for (ta, tb) in a.templates.iter().zip(b.templates.iter()) {
                assert_eq!(ta.internal_cost.to_bits(), tb.internal_cost.to_bits());
                assert_eq!(ta.signature(), tb.signature());
            }
        }
    }

    #[test]
    fn compressed_prepare_probes_only_representatives() {
        let o = opt();
        let inum = Inum::new(&o);
        let s = o.schema();
        // Duplicate every statement: compression must halve the probe bill.
        let base = HomGen::new(13).generate(s, 10);
        let mut w = cophy_workload::Workload::new();
        for (_, stmt, weight) in base.iter().chain(base.iter()) {
            w.push_weighted(stmt.clone(), weight);
        }
        let cw = CompressedWorkload::compress(s, &w, cophy_compress::CompressionPolicy::Lossless);
        let full = inum.prepare_workload(&w);
        let comp = inum.prepare_compressed(&cw);
        assert_eq!(comp.queries.len(), cw.n_representatives());
        assert!(comp.queries.len() < w.len());
        assert!(
            comp.what_if_calls <= full.what_if_calls / 2 + 1,
            "representative prepare must cut the what-if bill: {} vs {}",
            comp.what_if_calls,
            full.what_if_calls
        );
        // Cluster weights stand in for the merged duplicates: identical
        // total workload cost under any configuration.
        let cfg = Configuration::empty();
        let a = comp.cost(s, o.cost_model(), &cfg);
        let b = full.cost(s, o.cost_model(), &cfg);
        assert!((a - b).abs() <= 1e-9 * b.abs().max(1.0), "{a} vs {b}");
    }

    fn fast_retry(max_attempts: u32) -> cophy_optimizer::RetryPolicy {
        cophy_optimizer::RetryPolicy {
            max_attempts,
            base_backoff: std::time::Duration::from_micros(10),
            max_backoff: std::time::Duration::from_micros(50),
            ..Default::default()
        }
    }

    #[test]
    fn resilient_prepare_recovers_all_transient_schedules_bit_identically() {
        use cophy_optimizer::{FaultInjectingBackend, FaultPlan};
        let clean = opt();
        let w = HetGen::new(8).generate(clean.schema(), 12);
        let want = Inum::new(&clean).prepare_workload(&w);

        let faulty =
            FaultInjectingBackend::new(Box::new(opt()), FaultPlan::transient_only(21, 0.8, 3));
        let inum = Inum::with_retry(&faulty, fast_retry(4));
        let (got, report) = inum.try_prepare_workload_resilient(&w, None).unwrap();
        assert!(report.degraded.is_empty(), "all-transient schedule must fully recover");
        assert!(report.log.probes_recovered > 0, "the schedule must actually have injected");
        assert_eq!(got.what_if_calls, want.what_if_calls, "faulted attempts spend no calls");
        for (a, b) in got.queries.iter().zip(want.queries.iter()) {
            assert_eq!(a.qid, b.qid);
            assert_eq!(a.templates.len(), b.templates.len());
            for (ta, tb) in a.templates.iter().zip(b.templates.iter()) {
                assert_eq!(ta.internal_cost.to_bits(), tb.internal_cost.to_bits());
                assert_eq!(ta.signature(), tb.signature());
            }
        }

        // The sharded resilient path agrees byte-for-byte, fault report
        // included (per-pair schedules are interleaving-independent).
        faulty.reset_schedule();
        faulty.reset_call_counter();
        let (par, par_report) = inum.try_prepare_workload_resilient_parallel(&w, None).unwrap();
        assert_eq!(par_report, report);
        assert_eq!(par.what_if_calls, got.what_if_calls);
        for (a, b) in par.queries.iter().zip(got.queries.iter()) {
            assert_eq!(a.qid, b.qid);
            assert_eq!(a.templates.len(), b.templates.len());
        }
    }

    #[test]
    fn permanent_faults_degrade_instead_of_aborting() {
        use cophy_optimizer::{FaultInjectingBackend, FaultPlan};
        let mut plan = FaultPlan::none(5);
        plan.permanent_rate = 0.3;
        let faulty = FaultInjectingBackend::new(Box::new(opt()), plan);
        let w = HomGen::new(3).generate(faulty.schema(), 10);
        let inum = Inum::with_retry(&faulty, fast_retry(2));
        let (pw, report) = inum.try_prepare_workload_resilient(&w, None).unwrap();
        assert_eq!(pw.queries.len(), w.len(), "every statement must still be prepared");
        assert!(!report.is_clean(), "a 30% permanent schedule must degrade something");
        assert!(report.log.probes_exhausted > 0);
        for pq in &pw.queries {
            assert!(
                pq.templates.iter().any(|t| t.slots.iter().all(|s| s.required.is_empty())),
                "degraded statement {:?} lost its I∅-instantiable template",
                pq.qid
            );
        }
        // Substituted statements carry the atomic fallback (β = 0).
        for d in &report.degraded {
            if d.substituted && !d.from_cache {
                let pq = pw.queries.iter().find(|pq| pq.qid == d.qid).unwrap();
                assert!(pq.templates.iter().any(|t| t.internal_cost == 0.0));
            }
        }
    }

    #[test]
    fn cache_fallback_substitutes_previously_prepared_templates() {
        use cophy_optimizer::{FaultInjectingBackend, FaultPlan};
        let clean = opt();
        let w = HomGen::new(17).generate(clean.schema(), 8);
        let prior = Inum::new(&clean).prepare_workload(&w);

        let mut plan = FaultPlan::none(2);
        plan.permanent_rate = 1.0; // every probe fails: everything substitutes
        let faulty = FaultInjectingBackend::new(Box::new(opt()), plan);
        let inum = Inum::with_retry(&faulty, fast_retry(2));
        let (pw, report) = inum.try_prepare_workload_resilient(&w, Some(&prior)).unwrap();
        assert_eq!(report.degraded.len(), w.len());
        assert!(report.degraded.iter().all(|d| d.substituted && d.from_cache));
        for (a, b) in pw.queries.iter().zip(prior.queries.iter()) {
            assert_eq!(a.templates.len(), b.templates.len(), "cache substitution must be whole");
            for (ta, tb) in a.templates.iter().zip(b.templates.iter()) {
                assert_eq!(ta.internal_cost.to_bits(), tb.internal_cost.to_bits());
            }
        }
        assert_eq!(pw.what_if_calls, 0, "an all-substituted prepare spends no live calls");
    }

    #[test]
    fn resilient_prepare_with_no_faults_matches_plain_path() {
        let o = opt();
        let w = HetGen::new(4).generate(o.schema(), 9);
        let plain = Inum::new(&o).prepare_workload(&w);
        let inum = Inum::with_retry(&o, fast_retry(4));
        let (res, report) = inum.try_prepare_workload_resilient(&w, None).unwrap();
        assert!(report.is_clean());
        assert_eq!(res.what_if_calls, plain.what_if_calls, "retry layer must add zero probes");
        for (a, b) in res.queries.iter().zip(plain.queries.iter()) {
            assert_eq!(a.templates.len(), b.templates.len());
            for (ta, tb) in a.templates.iter().zip(b.templates.iter()) {
                assert_eq!(ta.internal_cost.to_bits(), tb.internal_cost.to_bits());
                assert_eq!(ta.signature(), tb.signature());
            }
        }
    }

    #[test]
    fn update_statements_carry_ucost_data() {
        let o = opt();
        let inum = Inum::new(&o);
        let w = cophy_workload::UpdateGen::new(1).generate(o.schema(), 5);
        let pw = inum.prepare_workload(&w);
        for pq in &pw.queries {
            let (u, rows) = pq.update.as_ref().expect("update info");
            assert!(*rows >= 1.0);
            assert!(pq.fixed_update_cost > 0.0);
            assert_eq!(u.shell.tables, pq.query.tables);
        }
    }
}
