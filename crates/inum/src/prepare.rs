//! INUM preparation: the few what-if calls that build the template cache.
//!
//! For each query we probe the optimizer with *ideal configurations* (see
//! [`crate::ideal`]) — one per combination of exploited interesting orders —
//! plus one probe under the empty configuration, whose plan sorts/hashes
//! everything and therefore yields a template with *no* slot requirements
//! (guaranteeing `cost(q, X) < ∞` for every `X`, including `X = ∅`).
//!
//! Combinations are enumerated in increasing complexity (none, singles,
//! pairs) and capped: template counts `K_q` stay small — the paper observes
//! `Σ_q K_q` grows roughly linearly with the workload — while still covering
//! the merge-join templates that need orders on *two* tables at once.

use cophy_catalog::{ColumnId, Configuration, Schema};
use cophy_compress::CompressedWorkload;
use cophy_optimizer::{BackendError, ProbeAnswer, WhatIfBackend};
use cophy_workload::{Query, QueryId, Statement, UpdateStatement, Workload};

use crate::ideal::ideal_config;
use crate::template::{Slot, TemplatePlan};

/// Cap on probing calls per query (1 empty + singles + pairs up to this).
pub const MAX_PROBES_PER_QUERY: usize = 48;

/// The INUM layer wrapping any what-if backend.
#[derive(Debug)]
pub struct Inum<'o> {
    opt: &'o dyn WhatIfBackend,
}

/// A query with its cached template plans — the unit CoPhy's BIP generator
/// and the fast cost function consume.
#[derive(Debug, Clone)]
pub struct PreparedQuery {
    pub qid: QueryId,
    pub weight: f64,
    /// The read shell (SELECT body or UPDATE query shell).
    pub query: Query,
    /// `TPlans(q)`: deduplicated template plans, cheapest-β first.
    pub templates: Vec<TemplatePlan>,
    /// For UPDATE statements: the statement (for `ucost`) and its row count.
    pub update: Option<(UpdateStatement, f64)>,
    /// The fixed `c_q` base-table update cost (0 for SELECTs).
    pub fixed_update_cost: f64,
}

/// A fully prepared workload.
#[derive(Debug, Clone)]
pub struct PreparedWorkload {
    pub queries: Vec<PreparedQuery>,
    /// Number of what-if optimizer calls spent preparing.
    pub what_if_calls: u64,
}

impl<'o> Inum<'o> {
    pub fn new(opt: &'o dyn WhatIfBackend) -> Self {
        Inum { opt }
    }

    pub fn optimizer(&self) -> &'o dyn WhatIfBackend {
        self.opt
    }

    /// Prepare a single statement.  Panics on [`BackendError`]; fallible
    /// callers (quota-metered or replayed backends) use
    /// [`Inum::try_prepare_statement`].
    pub fn prepare_statement(&self, qid: QueryId, stmt: &Statement, weight: f64) -> PreparedQuery {
        self.try_prepare_statement(qid, stmt, weight)
            .unwrap_or_else(|e| panic!("what-if backend error: {e}"))
    }

    /// Fallible single-statement preparation: probe failures (replay misses,
    /// exhausted what-if quotas) surface as typed errors instead of panics.
    pub fn try_prepare_statement(
        &self,
        qid: QueryId,
        stmt: &Statement,
        weight: f64,
    ) -> Result<PreparedQuery, BackendError> {
        let q = stmt.read_shell().clone();
        let templates = self.try_extract_templates(&q)?;
        let (update, fixed) = match stmt {
            Statement::Select(_) => (None, 0.0),
            Statement::Update(u) => {
                let rows = cophy_optimizer::cardinality::access_rows(
                    self.opt.schema(),
                    &u.shell,
                    u.table(),
                );
                (Some((u.clone(), rows)), self.opt.base_update_cost(u))
            }
        };
        Ok(PreparedQuery { qid, weight, query: q, templates, update, fixed_update_cost: fixed })
    }

    /// Prepare every statement of `w` (sequentially; callers may shard the
    /// workload across threads — `PreparedQuery` is `Send`).
    pub fn prepare_workload(&self, w: &Workload) -> PreparedWorkload {
        self.try_prepare_workload(w).unwrap_or_else(|e| panic!("what-if backend error: {e}"))
    }

    /// Fallible [`Inum::prepare_workload`].
    pub fn try_prepare_workload(&self, w: &Workload) -> Result<PreparedWorkload, BackendError> {
        let before = self.opt.what_if_calls();
        let queries = w
            .iter()
            .map(|(qid, stmt, weight)| self.try_prepare_statement(qid, stmt, weight))
            .collect::<Result<_, _>>()?;
        Ok(PreparedWorkload { queries, what_if_calls: self.opt.what_if_calls() - before })
    }

    /// [`Inum::prepare_workload`] sharded across OS threads — the probing
    /// calls are independent per statement, so preparation parallelizes
    /// embarrassingly.  The result is byte-identical to the sequential
    /// preparation (shards are re-sorted by statement id).
    pub fn prepare_workload_parallel(&self, w: &Workload) -> PreparedWorkload {
        self.try_prepare_workload_parallel(w)
            .unwrap_or_else(|e| panic!("what-if backend error: {e}"))
    }

    /// Fallible [`Inum::prepare_workload_parallel`]: the first shard error
    /// (by statement id) is reported, matching the sequential order.
    pub fn try_prepare_workload_parallel(
        &self,
        w: &Workload,
    ) -> Result<PreparedWorkload, BackendError> {
        let n_threads = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(4);
        let ids: Vec<_> = w.iter().collect();
        let chunks: Vec<_> = ids.chunks(ids.len().div_ceil(n_threads).max(1)).collect();
        let before = self.opt.what_if_calls();
        let queries_by_chunk = std::thread::scope(|s| {
            let handles: Vec<_> = chunks
                .iter()
                .map(|chunk| {
                    s.spawn(move || {
                        chunk
                            .iter()
                            .map(|(qid, stmt, weight)| {
                                self.try_prepare_statement(*qid, stmt, *weight)
                            })
                            .collect::<Result<Vec<_>, _>>()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("INUM shard")).collect::<Vec<_>>()
        });
        let mut queries = Vec::with_capacity(w.len());
        for shard in queries_by_chunk {
            queries.append(&mut shard?);
        }
        queries.sort_by_key(|pq| pq.qid);
        Ok(PreparedWorkload { queries, what_if_calls: self.opt.what_if_calls() - before })
    }

    /// Prepare only the *representatives* of a compressed workload: the
    /// cluster weights ride along as `PreparedQuery::weight`, so every
    /// cached plan cost downstream (the BIP objective, the fast workload
    /// cost) is scaled to stand in for the whole cluster.  What-if calls are
    /// spent per representative, not per original statement.
    pub fn prepare_compressed(&self, cw: &CompressedWorkload) -> PreparedWorkload {
        self.prepare_workload(cw.representatives())
    }

    /// Fallible [`Inum::prepare_compressed`].
    pub fn try_prepare_compressed(
        &self,
        cw: &CompressedWorkload,
    ) -> Result<PreparedWorkload, BackendError> {
        self.try_prepare_workload(cw.representatives())
    }

    /// [`Inum::prepare_compressed`] sharded across OS threads.
    pub fn prepare_compressed_parallel(&self, cw: &CompressedWorkload) -> PreparedWorkload {
        self.prepare_workload_parallel(cw.representatives())
    }

    /// Fallible [`Inum::prepare_compressed_parallel`].
    pub fn try_prepare_compressed_parallel(
        &self,
        cw: &CompressedWorkload,
    ) -> Result<PreparedWorkload, BackendError> {
        self.try_prepare_workload_parallel(cw.representatives())
    }

    /// The probing loop: empty-config probe + ideal-config probes.
    fn try_extract_templates(&self, q: &Query) -> Result<Vec<TemplatePlan>, BackendError> {
        let schema = self.opt.schema();
        let cm = self.opt.cost_model();
        let mut templates: Vec<TemplatePlan> = Vec::new();

        // Probe 1: empty configuration → the all-sort/hash template.  Its
        // slots never carry requirements (heap scans deliver no order).
        let base = self.opt.try_probe(q, &Configuration::empty())?;
        push_template(&mut templates, extract(schema, cm, q, &base));

        // Per-table interesting orders.
        let per_table: Vec<Vec<Vec<ColumnId>>> =
            q.tables.iter().map(|t| q.interesting_orders_on(*t)).collect();

        // Combination stream: all-none, singles, pairs (capped).
        let n = q.tables.len();
        let mut combos: Vec<Vec<&[ColumnId]>> = Vec::new();
        combos.push(vec![&[]; n]);
        for i in 0..n {
            for o in &per_table[i] {
                let mut c: Vec<&[ColumnId]> = vec![&[]; n];
                c[i] = o;
                combos.push(c);
            }
        }
        'outer: for i in 0..n {
            for j in (i + 1)..n {
                for oi in &per_table[i] {
                    for oj in &per_table[j] {
                        if combos.len() >= MAX_PROBES_PER_QUERY {
                            break 'outer;
                        }
                        let mut c: Vec<&[ColumnId]> = vec![&[]; n];
                        c[i] = oi;
                        c[j] = oj;
                        combos.push(c);
                    }
                }
            }
        }

        for combo in combos {
            let cfg = ideal_config(schema, q, &combo);
            let ans = self.opt.try_probe(q, &cfg)?;
            push_template(&mut templates, extract(schema, cm, q, &ans));
        }

        templates.sort_by(|a, b| a.internal_cost.total_cmp(&b.internal_cost));
        Ok(templates)
    }
}

/// Turn a probe answer into a template: β = internal cost, slots carry the
/// order requirements the plan imposes on its leaves (§3 / Appendix A).
/// The heap fallback `γ` is analytic — no backend involvement.
fn extract(
    schema: &Schema,
    cm: &cophy_optimizer::CostModel,
    q: &Query,
    ans: &ProbeAnswer,
) -> TemplatePlan {
    let mut slots = Vec::with_capacity(q.tables.len());
    for leaf in &ans.leaves {
        let heap_cost = if leaf.required.is_empty() {
            Some(cophy_optimizer::access::heap_path(schema, cm, q, leaf.table, None).cost)
        } else {
            None
        };
        slots.push(Slot { table: leaf.table, required: leaf.required.clone(), heap_cost });
    }
    TemplatePlan { internal_cost: ans.internal_cost, slots }
}

/// Deduplicate by slot signature, keeping the cheaper internal cost.
fn push_template(templates: &mut Vec<TemplatePlan>, tpl: TemplatePlan) {
    if let Some(existing) = templates.iter_mut().find(|t| t.signature() == tpl.signature()) {
        if tpl.internal_cost < existing.internal_cost {
            existing.internal_cost = tpl.internal_cost;
            existing.slots = tpl.slots;
        }
    } else {
        templates.push(tpl);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cophy_catalog::TpchGen;
    use cophy_optimizer::{SystemProfile, WhatIfOptimizer};
    use cophy_workload::{HetGen, HomGen};

    fn opt() -> WhatIfOptimizer {
        WhatIfOptimizer::new(TpchGen::default().schema(), SystemProfile::A)
    }

    #[test]
    fn every_query_has_an_unconstrained_template() {
        let o = opt();
        let inum = Inum::new(&o);
        let w = HomGen::new(2).generate(o.schema(), 30);
        let pw = inum.prepare_workload(&w);
        for pq in &pw.queries {
            assert!(
                pq.templates.iter().any(|t| t.slots.iter().all(|s| s.required.is_empty())),
                "query {:?} lacks an I∅-instantiable template",
                pq.qid
            );
            assert!(!pq.templates.is_empty());
        }
    }

    #[test]
    fn probe_counts_are_bounded() {
        let o = opt();
        let inum = Inum::new(&o);
        let w = HomGen::new(2).generate(o.schema(), 20);
        let pw = inum.prepare_workload(&w);
        let per_query = pw.what_if_calls as f64 / 20.0;
        assert!(
            per_query <= (MAX_PROBES_PER_QUERY + 1) as f64,
            "too many probes per query: {per_query}"
        );
    }

    #[test]
    fn templates_deduplicated() {
        let o = opt();
        let inum = Inum::new(&o);
        let w = HetGen::new(6).generate(o.schema(), 25);
        let pw = inum.prepare_workload(&w);
        for pq in &pw.queries {
            let mut sigs: Vec<_> = pq.templates.iter().map(|t| t.signature()).collect();
            let before = sigs.len();
            sigs.sort();
            sigs.dedup();
            assert_eq!(before, sigs.len(), "duplicate template signatures");
        }
    }

    #[test]
    fn parallel_prepare_is_byte_identical_to_sequential() {
        let o = opt();
        let inum = Inum::new(&o);
        let w = HetGen::new(12).generate(o.schema(), 16);
        let par = inum.prepare_workload_parallel(&w);
        let seq = inum.prepare_workload(&w);
        assert_eq!(par.queries.len(), seq.queries.len());
        assert_eq!(par.what_if_calls, seq.what_if_calls);
        for (a, b) in par.queries.iter().zip(seq.queries.iter()) {
            assert_eq!(a.qid, b.qid);
            assert_eq!(a.weight.to_bits(), b.weight.to_bits());
            assert_eq!(a.templates.len(), b.templates.len());
            for (ta, tb) in a.templates.iter().zip(b.templates.iter()) {
                assert_eq!(ta.internal_cost.to_bits(), tb.internal_cost.to_bits());
                assert_eq!(ta.signature(), tb.signature());
            }
        }
    }

    #[test]
    fn compressed_prepare_probes_only_representatives() {
        let o = opt();
        let inum = Inum::new(&o);
        let s = o.schema();
        // Duplicate every statement: compression must halve the probe bill.
        let base = HomGen::new(13).generate(s, 10);
        let mut w = cophy_workload::Workload::new();
        for (_, stmt, weight) in base.iter().chain(base.iter()) {
            w.push_weighted(stmt.clone(), weight);
        }
        let cw = CompressedWorkload::compress(s, &w, cophy_compress::CompressionPolicy::Lossless);
        let full = inum.prepare_workload(&w);
        let comp = inum.prepare_compressed(&cw);
        assert_eq!(comp.queries.len(), cw.n_representatives());
        assert!(comp.queries.len() < w.len());
        assert!(
            comp.what_if_calls <= full.what_if_calls / 2 + 1,
            "representative prepare must cut the what-if bill: {} vs {}",
            comp.what_if_calls,
            full.what_if_calls
        );
        // Cluster weights stand in for the merged duplicates: identical
        // total workload cost under any configuration.
        let cfg = Configuration::empty();
        let a = comp.cost(s, o.cost_model(), &cfg);
        let b = full.cost(s, o.cost_model(), &cfg);
        assert!((a - b).abs() <= 1e-9 * b.abs().max(1.0), "{a} vs {b}");
    }

    #[test]
    fn update_statements_carry_ucost_data() {
        let o = opt();
        let inum = Inum::new(&o);
        let w = cophy_workload::UpdateGen::new(1).generate(o.schema(), 5);
        let pw = inum.prepare_workload(&w);
        for pq in &pw.queries {
            let (u, rows) = pq.update.as_ref().expect("update info");
            assert!(*rows >= 1.0);
            assert!(pq.fixed_update_cost > 0.0);
            assert_eq!(u.shell.tables, pq.query.tables);
        }
    }
}
