//! Ideal-index construction for INUM's probing calls.
//!
//! To discover the template plan that exploits a given combination of
//! interesting orders, INUM asks the what-if optimizer to optimize the query
//! under a configuration of *ideal* hypothetical indexes: perfectly sargable,
//! covering indexes that deliver the requested order on each table.  The
//! optimizer then reveals the best internal plan for that order combination;
//! the concrete indexes are thrown away and only the plan skeleton is kept.

use cophy_catalog::{ColumnId, Configuration, Index, Schema, TableId};
use cophy_workload::{PredOp, Query};

/// Build the ideal index for `table` in `q` that delivers `order` (possibly
/// empty) after the equality-bound prefix.
///
/// Key layout: equality-predicate columns, then the requested order columns,
/// then the best range-predicate column; every other referenced column rides
/// along as INCLUDE payload, making the index covering.
pub fn ideal_index(schema: &Schema, q: &Query, table: TableId, order: &[ColumnId]) -> Index {
    let _ = schema;
    let mut key: Vec<ColumnId> = Vec::new();
    // 1. Equality prefix (skip columns that are part of the requested order —
    //    they must appear at their order position instead).
    for p in q.predicates_on(table) {
        if p.is_eq() && !order.contains(&p.column.column) && !key.contains(&p.column.column) {
            key.push(p.column.column);
        }
    }
    // 2. The requested order.
    for c in order {
        if !key.contains(c) {
            key.push(*c);
        }
    }
    // 3. One range column extends sargability (only useful directly after the
    //    equality prefix, but harmless later).
    for p in q.predicates_on(table) {
        if matches!(p.op, PredOp::Lt(_) | PredOp::Gt(_) | PredOp::Between(_, _))
            && !key.contains(&p.column.column)
        {
            key.push(p.column.column);
            break;
        }
    }
    // Degenerate case: no predicates, no order — key on the first used column
    // (or column 0) so the index is well-formed.
    if key.is_empty() {
        let used = q.columns_used_on(table);
        key.push(used.first().copied().unwrap_or(ColumnId(0)));
    }
    // 4. Covering payload.
    let include: Vec<ColumnId> =
        q.columns_used_on(table).into_iter().filter(|c| !key.contains(c)).collect();
    Index::covering(table, key, include)
}

/// Ideal configuration for one order combination: `orders[i]` is the
/// requested order for `q.tables[i]` (empty slice = no order requested).
pub fn ideal_config(schema: &Schema, q: &Query, orders: &[&[ColumnId]]) -> Configuration {
    debug_assert_eq!(orders.len(), q.tables.len());
    let mut cfg = Configuration::empty();
    for (i, &t) in q.tables.iter().enumerate() {
        cfg.insert(ideal_index(schema, q, t, orders[i]));
        // Also provide the order-free ideal so the optimizer can decline the
        // order if a plain covering access is cheaper.
        if !orders[i].is_empty() {
            cfg.insert(ideal_index(schema, q, t, &[]));
        }
    }
    cfg
}

#[cfg(test)]
mod tests {
    use super::*;
    use cophy_catalog::TpchGen;
    use cophy_workload::Predicate;

    #[test]
    fn ideal_index_is_covering_and_ordered() {
        let s = TpchGen::default().schema();
        let li = s.table_by_name("lineitem").unwrap().id;
        let sd = s.resolve("lineitem.l_shipdate").unwrap();
        let rf = s.resolve("lineitem.l_returnflag").unwrap();
        let qty = s.resolve("lineitem.l_quantity").unwrap();
        let q = Query {
            tables: vec![li],
            predicates: vec![Predicate::eq(rf, 1.0), Predicate::between(sd, 0.0, 50.0)],
            projections: vec![qty],
            order_by: vec![],
            ..Default::default()
        };
        let order = vec![qty.column];
        let ix = ideal_index(&s, &q, li, &order);
        // eq prefix first, then order, then range.
        assert_eq!(ix.key[0], rf.column);
        assert_eq!(ix.key[1], qty.column);
        assert!(ix.key.contains(&sd.column));
        assert!(ix.covers(&q.columns_used_on(li)));
        // Delivers the requested order given the eq binding.
        assert!(ix.provides_order(&order, &q.eq_columns_on(li)));
    }

    #[test]
    fn degenerate_query_still_gets_wellformed_index() {
        let s = TpchGen::default().schema();
        let li = s.table_by_name("lineitem").unwrap().id;
        let q = Query::scan(li);
        let ix = ideal_index(&s, &q, li, &[]);
        assert!(!ix.key.is_empty());
    }

    #[test]
    fn ideal_config_has_indexes_for_every_table() {
        let s = TpchGen::default().schema();
        let ord = s.table_by_name("orders").unwrap().id;
        let li = s.table_by_name("lineitem").unwrap().id;
        let ok = s.resolve("orders.o_orderkey").unwrap();
        let lk = s.resolve("lineitem.l_orderkey").unwrap();
        let sd = s.resolve("lineitem.l_shipdate").unwrap();
        let q = Query {
            tables: vec![ord, li],
            joins: vec![cophy_workload::Join::new(ok, lk)],
            predicates: vec![Predicate::between(sd, 0.0, 90.0)],
            ..Default::default()
        };
        let orders: Vec<&[ColumnId]> = vec![&[], std::slice::from_ref(&lk.column)];
        let cfg = ideal_config(&s, &q, &orders);
        assert!(cfg.on_table(ord).count() >= 1);
        // lineitem gets the ordered ideal (key l_orderkey, l_shipdate…) and
        // the order-free ideal (key l_shipdate first) — distinct definitions.
        assert!(cfg.on_table(li).count() >= 2, "ordered + unordered ideal");
    }
}
