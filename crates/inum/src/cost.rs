//! The linearly composable cost function (Definition 1).
//!
//! Given a prepared query, `cost(q, X)` is evaluated per template by
//! independent per-slot minimization — the cartesian structure of
//! `atom(X)` means the minimum over atomic configurations decomposes into a
//! minimum per slot.  This is the approximation-free consequence of the
//! paper's Definition 1 and what makes the evaluation run in microseconds.

use cophy_catalog::{Configuration, Index, Schema};
use cophy_optimizer::CostModel;

use crate::prepare::{PreparedQuery, PreparedWorkload};

/// Which access method a slot chose in the winning atomic configuration.
#[derive(Debug, Clone, PartialEq)]
pub enum AtomicChoice {
    /// The heap scan `I∅`.
    Heap,
    /// Index position within the probed configuration's index list.
    Index(usize),
}

/// The winning template and per-slot choices for one query under one
/// configuration — useful for explaining recommendations.
#[derive(Debug, Clone)]
pub struct CostBreakdown {
    /// Index of the winning template in `PreparedQuery::templates`.
    pub template: usize,
    /// `β` of the winning template.
    pub internal_cost: f64,
    /// Per-slot `(choice, γ)`.
    pub slots: Vec<(AtomicChoice, f64)>,
    /// Total `cost(q, X)` including update maintenance and `c_q`.
    pub total: f64,
}

impl PreparedQuery {
    /// `ucost(a, q)`: maintenance cost of index `a` under this statement
    /// (0 for SELECTs and unaffected indexes).
    pub fn ucost(&self, schema: &Schema, cm: &CostModel, ix: &Index) -> f64 {
        match &self.update {
            Some((u, rows)) if u.affects(ix) => cm.maintain(*rows, ix.height(schema)),
            _ => 0.0,
        }
    }

    /// Read-side cost: `min_k { β_qk + Σ_i min_a γ_qkia }` over `a ∈ X_i ∪
    /// {I∅}`.  Always finite thanks to the unconstrained template.
    pub fn read_cost(&self, schema: &Schema, cm: &CostModel, config: &Configuration) -> f64 {
        self.breakdown(schema, cm, config).total
            - self.maintenance_cost(schema, cm, config)
            - self.fixed_update_cost
    }

    /// Total update maintenance under `config`.
    pub fn maintenance_cost(&self, schema: &Schema, cm: &CostModel, config: &Configuration) -> f64 {
        config.iter().map(|ix| self.ucost(schema, cm, ix)).sum()
    }

    /// Full `cost(q, X)` (read + maintenance + fixed).
    pub fn cost(&self, schema: &Schema, cm: &CostModel, config: &Configuration) -> f64 {
        self.breakdown(schema, cm, config).total
    }

    /// Explain the winning template and per-slot access choices.
    pub fn breakdown(
        &self,
        schema: &Schema,
        cm: &CostModel,
        config: &Configuration,
    ) -> CostBreakdown {
        let indexes: Vec<&Index> = config.iter().collect();
        let mut best: Option<CostBreakdown> = None;

        for (k, tpl) in self.templates.iter().enumerate() {
            let mut slot_choices = Vec::with_capacity(tpl.slots.len());
            let mut total = tpl.internal_cost;
            let mut feasible = true;
            for (i, slot) in tpl.slots.iter().enumerate() {
                let mut slot_best: Option<(AtomicChoice, f64)> =
                    slot.heap_cost.map(|c| (AtomicChoice::Heap, c));
                for (pos, ix) in indexes.iter().enumerate() {
                    if ix.table != slot.table {
                        continue;
                    }
                    if let Some(g) = tpl.gamma(schema, cm, &self.query, i, ix) {
                        if slot_best.as_ref().is_none_or(|(_, c)| g < *c) {
                            slot_best = Some((AtomicChoice::Index(pos), g));
                        }
                    }
                }
                match slot_best {
                    Some((choice, g)) => {
                        total += g;
                        slot_choices.push((choice, g));
                    }
                    None => {
                        feasible = false;
                        break;
                    }
                }
            }
            if !feasible {
                continue;
            }
            if best.as_ref().is_none_or(|b| total < b.total) {
                best = Some(CostBreakdown {
                    template: k,
                    internal_cost: tpl.internal_cost,
                    slots: slot_choices,
                    total,
                });
            }
        }

        let mut b = best.expect("unconstrained template guarantees feasibility");
        b.total += self.maintenance_cost(schema, cm, config) + self.fixed_update_cost;
        b
    }
}

impl PreparedWorkload {
    /// `Σ_q f_q · cost(q, X)` via the INUM cache — no optimizer calls.
    pub fn cost(&self, schema: &Schema, cm: &CostModel, config: &Configuration) -> f64 {
        self.queries.iter().map(|pq| pq.weight * pq.cost(schema, cm, config)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prepare::Inum;
    use cophy_catalog::{Configuration, Index, TpchGen};
    use cophy_optimizer::{SystemProfile, WhatIfOptimizer};
    use cophy_workload::{HetGen, HomGen, Predicate, Query, Statement, Workload};
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn opt() -> WhatIfOptimizer {
        WhatIfOptimizer::new(TpchGen::default().schema(), SystemProfile::A)
    }

    /// Random small configuration of candidate indexes over the schema.
    fn random_config(o: &WhatIfOptimizer, seed: u64) -> Configuration {
        let s = o.schema();
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut cfg = Configuration::empty();
        for _ in 0..rng.gen_range(1..6) {
            let t = &s.tables()[rng.gen_range(0..s.n_tables())];
            let ncols = rng.gen_range(1..=2.min(t.columns.len()));
            let mut key = Vec::new();
            while key.len() < ncols {
                let c = cophy_catalog::ColumnId(rng.gen_range(0..t.columns.len() as u32));
                if !key.contains(&c) {
                    key.push(c);
                }
            }
            cfg.insert(Index::secondary(t.id, key));
        }
        cfg
    }

    #[test]
    fn inum_cost_matches_empty_config_optimizer_cost() {
        let o = opt();
        let inum = Inum::new(&o);
        let w = HomGen::new(4).generate(o.schema(), 20);
        let pw = inum.prepare_workload(&w);
        for pq in &pw.queries {
            let inum_cost = pq.cost(o.schema(), o.cost_model(), &Configuration::empty());
            let direct = o.cost_query(&pq.query, &Configuration::empty());
            let ratio = inum_cost / direct;
            assert!(
                (0.999..=1.001).contains(&ratio),
                "empty-config INUM cost must equal the optimizer's: ratio {ratio}"
            );
        }
    }

    #[test]
    fn inum_is_accurate_approximation_under_random_configs() {
        let o = opt();
        let inum = Inum::new(&o);
        let w = HomGen::new(8).generate(o.schema(), 12);
        let pw = inum.prepare_workload(&w);
        let mut worst: f64 = 1.0;
        for seed in 0..6u64 {
            let cfg = random_config(&o, seed);
            for pq in &pw.queries {
                let inum_cost = pq.cost(o.schema(), o.cost_model(), &cfg);
                let direct = o.cost_query(&pq.query, &cfg);
                let ratio = inum_cost / direct;
                // INUM restricts plan shapes to the template set → the INUM
                // cost can never be more than marginally below the
                // optimizer's, and stays close above it ([15] reports the
                // same bound empirically).
                assert!(ratio >= 0.995, "INUM under-estimated: {ratio}");
                worst = worst.max(ratio);
            }
        }
        assert!(worst <= 1.35, "INUM over-estimation too large: {worst}");
    }

    #[test]
    fn breakdown_picks_useful_index() {
        let o = opt();
        let s = o.schema();
        let inum = Inum::new(&o);
        let ord = s.table_by_name("orders").unwrap().id;
        let ck = s.resolve("orders.o_custkey").unwrap();
        let mut q = Query::scan(ord);
        q.predicates.push(Predicate::eq(ck, 11.0));
        let mut w = Workload::new();
        let qid = w.push(Statement::Select(q));
        let pw = inum.prepare_workload(&w);
        let pq = &pw.queries[qid.0 as usize];

        let mut cfg = Configuration::empty();
        cfg.insert(Index::secondary(ord, vec![ck.column]));
        let b = pq.breakdown(s, o.cost_model(), &cfg);
        assert_eq!(b.slots.len(), 1);
        assert!(matches!(b.slots[0].0, AtomicChoice::Index(0)));
        let empty = pq.breakdown(s, o.cost_model(), &Configuration::empty());
        assert!(matches!(empty.slots[0].0, AtomicChoice::Heap));
        assert!(b.total < empty.total);
    }

    #[test]
    fn monotone_in_configuration() {
        // Adding an index never increases the INUM cost of a SELECT.
        let o = opt();
        let inum = Inum::new(&o);
        let w = HetGen::new(9).generate(o.schema(), 15);
        let pw = inum.prepare_workload(&w);
        let small = random_config(&o, 42);
        let big = small.union(&random_config(&o, 43));
        for pq in &pw.queries {
            let cs = pq.cost(o.schema(), o.cost_model(), &small);
            let cb = pq.cost(o.schema(), o.cost_model(), &big);
            assert!(cb <= cs + 1e-9, "more indexes must not hurt reads: {cb} > {cs}");
        }
    }

    #[test]
    fn update_cost_adds_maintenance_linearly() {
        let o = opt();
        let s = o.schema();
        let inum = Inum::new(&o);
        let w = cophy_workload::UpdateGen::new(7).generate(s, 3);
        let pw = inum.prepare_workload(&w);
        for pq in &pw.queries {
            let (u, _) = pq.update.clone().unwrap();
            let affected = Index::secondary(u.table(), vec![u.set_columns[0]]);
            let mut cfg = Configuration::empty();
            cfg.insert(affected.clone());
            let with_ix = pq.cost(s, o.cost_model(), &cfg);
            let without = pq.cost(s, o.cost_model(), &Configuration::empty());
            let ucost = pq.ucost(s, o.cost_model(), &affected);
            assert!(ucost > 0.0);
            // read side may improve, but by less than ucost was added for a
            // point update on a SET column with no predicate benefit…
            // at minimum, the identity cost(X)=read(X)+maint(X)+fixed holds:
            let read = pq.read_cost(s, o.cost_model(), &cfg);
            let maint = pq.maintenance_cost(s, o.cost_model(), &cfg);
            assert!((with_ix - (read + maint + pq.fixed_update_cost)).abs() < 1e-9);
            let read0 = pq.read_cost(s, o.cost_model(), &Configuration::empty());
            assert!((without - (read0 + pq.fixed_update_cost)).abs() < 1e-9);
        }
    }

    #[test]
    fn workload_cost_is_weighted_sum() {
        let o = opt();
        let inum = Inum::new(&o);
        let mut w = Workload::new();
        let li = o.schema().table_by_name("lineitem").unwrap().id;
        w.push_weighted(Statement::Select(Query::scan(li)), 2.0);
        w.push_weighted(Statement::Select(Query::scan(li)), 3.0);
        let pw = inum.prepare_workload(&w);
        let c = pw.cost(o.schema(), o.cost_model(), &Configuration::empty());
        let single = pw.queries[0].cost(o.schema(), o.cost_model(), &Configuration::empty());
        assert!((c - 5.0 * single).abs() < 1e-6);
    }
}
