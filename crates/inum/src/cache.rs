//! Shared, concurrently readable INUM cache.
//!
//! The template cache is the expensive artifact of preparation (the what-if
//! probe bill), and the advisor-as-a-service pattern wants it shared: many
//! sessions answering `what_if` / `recommend` against one prepared workload,
//! with writes (absorbing new statements) serialized on the side.
//!
//! [`InumCache`] wraps a [`PreparedWorkload`] in `Arc<RwLock>` with a
//! closure-based access API: readers run concurrently, interior mutability is
//! confined to the write path.  Handles are cheap to clone and `Send + Sync`.

use std::sync::{Arc, RwLock};

use crate::prepare::PreparedWorkload;

/// A shared handle to a prepared workload.
#[derive(Debug)]
pub struct InumCache {
    inner: RwLock<PreparedWorkload>,
}

impl InumCache {
    /// Wrap a prepared workload in a shareable handle.
    pub fn new(prepared: PreparedWorkload) -> Arc<InumCache> {
        Arc::new(InumCache { inner: RwLock::new(prepared) })
    }

    /// An empty cache (no prepared statements yet).
    pub fn empty() -> Arc<InumCache> {
        InumCache::new(PreparedWorkload { queries: Vec::new(), what_if_calls: 0 })
    }

    /// Run a closure under the read lock.  Readers are concurrent.
    pub fn read<R>(&self, f: impl FnOnce(&PreparedWorkload) -> R) -> R {
        f(&self.inner.read().expect("INUM cache poisoned"))
    }

    /// Run a closure under the write lock (exclusive).
    pub fn write<R>(&self, f: impl FnOnce(&mut PreparedWorkload) -> R) -> R {
        f(&mut self.inner.write().expect("INUM cache poisoned"))
    }

    /// Clone the prepared workload out of the cache.
    pub fn snapshot(&self) -> PreparedWorkload {
        self.read(|pw| pw.clone())
    }

    /// Number of prepared statements.
    pub fn len(&self) -> usize {
        self.read(|pw| pw.queries.len())
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// What-if calls spent building (and extending) the cache.
    pub fn what_if_calls(&self) -> u64 {
        self.read(|pw| pw.what_if_calls)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prepare::Inum;
    use cophy_catalog::{Configuration, TpchGen};
    use cophy_optimizer::{SystemProfile, WhatIfOptimizer};
    use cophy_workload::HomGen;

    #[test]
    fn concurrent_readers_see_one_prepared_workload() {
        let o = WhatIfOptimizer::new(TpchGen::default().schema(), SystemProfile::A);
        let w = HomGen::new(21).generate(o.schema(), 6);
        let cache = InumCache::new(Inum::new(&o).prepare_workload(&w));
        let cfg = Configuration::empty();
        let expect = cache.read(|pw| pw.cost(o.schema(), o.cost_model(), &cfg));
        let costs: Vec<f64> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let cache = Arc::clone(&cache);
                    let (schema, cm, cfg) = (o.schema(), o.cost_model(), &cfg);
                    s.spawn(move || cache.read(|pw| pw.cost(schema, cm, cfg)))
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("reader")).collect()
        });
        for c in costs {
            assert_eq!(c.to_bits(), expect.to_bits());
        }
    }

    #[test]
    fn writes_are_visible_to_subsequent_readers() {
        let cache = InumCache::empty();
        assert!(cache.is_empty());
        let o = WhatIfOptimizer::new(TpchGen::default().schema(), SystemProfile::A);
        let w = HomGen::new(22).generate(o.schema(), 3);
        let prepared = Inum::new(&o).prepare_workload(&w);
        cache.write(|pw| *pw = prepared);
        assert_eq!(cache.len(), 3);
        assert!(cache.what_if_calls() > 0);
        let snap = cache.snapshot();
        assert_eq!(snap.queries.len(), 3);
    }
}
