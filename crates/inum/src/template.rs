//! Template plans: the unit of INUM's cache.

use cophy_catalog::{ColumnId, Index, Schema, TableId};
use cophy_optimizer::{access, CostModel};
use cophy_workload::Query;
use serde::{Deserialize, Serialize};

/// One leaf slot of a template plan.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Slot {
    pub table: TableId,
    /// Order the internal plan requires from this access (local columns,
    /// already normalized: equality-bound prefix stripped).  Empty = any
    /// access method fits.
    pub required: Vec<ColumnId>,
    /// `γ_qki∅`: cost of instantiating the slot with the heap scan `I∅`;
    /// `None` when the required order makes the heap scan incompatible
    /// (`γ = ∞` in the paper's notation).
    pub heap_cost: Option<f64>,
}

/// A template plan: internal operators with open access slots.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TemplatePlan {
    /// `β_qk`: the internal plan cost (joins, sorts, aggregation).
    pub internal_cost: f64,
    /// One slot per referenced table, in the query's table order.
    pub slots: Vec<Slot>,
}

impl TemplatePlan {
    /// Signature used for deduplication: two templates with identical slot
    /// requirements are interchangeable (keep the cheaper β).
    pub fn signature(&self) -> Vec<(TableId, Vec<ColumnId>)> {
        self.slots.iter().map(|s| (s.table, s.required.clone())).collect()
    }

    /// `γ_qkia`: cost of instantiating slot `slot_idx` with index `ix`, or
    /// `None` if the index is incompatible with the slot's order requirement
    /// (`γ = ∞`).  Purely analytical — no optimizer call.
    pub fn gamma(
        &self,
        schema: &Schema,
        cm: &CostModel,
        q: &Query,
        slot_idx: usize,
        ix: &Index,
    ) -> Option<f64> {
        let slot = &self.slots[slot_idx];
        if ix.table != slot.table {
            return None;
        }
        if !slot.required.is_empty() {
            let eq = q.eq_columns_on(slot.table);
            if !ix.provides_order(&slot.required, &eq) {
                return None;
            }
        }
        access::path_for_index(schema, cm, q, slot.table, ix).map(|p| p.cost)
    }

    /// Instantiated cost `icost(p, A)` for an atomic configuration given as
    /// one optional index per slot (`None` = `I∅`).  Returns `None` when the
    /// configuration cannot instantiate the template (infinite cost).
    pub fn icost(
        &self,
        schema: &Schema,
        cm: &CostModel,
        q: &Query,
        atomic: &[Option<&Index>],
    ) -> Option<f64> {
        debug_assert_eq!(atomic.len(), self.slots.len());
        let mut total = self.internal_cost;
        for (i, choice) in atomic.iter().enumerate() {
            let slot_cost = match choice {
                None => self.slots[i].heap_cost?,
                Some(ix) => self.gamma(schema, cm, q, i, ix)?,
            };
            total += slot_cost;
        }
        Some(total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cophy_catalog::TpchGen;
    use cophy_optimizer::SystemProfile;
    use cophy_workload::Predicate;

    fn setup() -> (cophy_catalog::Schema, CostModel) {
        (TpchGen::default().schema(), CostModel::profile(SystemProfile::A))
    }

    fn sample_query(s: &cophy_catalog::Schema) -> (Query, TableId) {
        let li = s.table_by_name("lineitem").unwrap().id;
        let sd = s.resolve("lineitem.l_shipdate").unwrap();
        let mut q = Query::scan(li);
        q.predicates.push(Predicate::between(sd, 10.0, 60.0));
        (q, li)
    }

    #[test]
    fn gamma_infinite_for_wrong_table_or_order() {
        let (s, cm) = setup();
        let (q, li) = sample_query(&s);
        let tpl = TemplatePlan {
            internal_cost: 5.0,
            slots: vec![Slot {
                table: li,
                required: vec![s.resolve("lineitem.l_quantity").unwrap().column],
                heap_cost: None,
            }],
        };
        // Index on another table: incompatible.
        let other = Index::secondary(s.table_by_name("orders").unwrap().id, vec![ColumnId(0)]);
        assert!(tpl.gamma(&s, &cm, &q, 0, &other).is_none());
        // Index that does not deliver the required order: incompatible.
        let wrong = Index::secondary(li, vec![s.resolve("lineitem.l_shipdate").unwrap().column]);
        assert!(tpl.gamma(&s, &cm, &q, 0, &wrong).is_none());
        // Index delivering the order: finite.
        let right = Index::secondary(li, vec![s.resolve("lineitem.l_quantity").unwrap().column]);
        assert!(tpl.gamma(&s, &cm, &q, 0, &right).is_some());
    }

    #[test]
    fn icost_adds_beta_and_gammas() {
        let (s, cm) = setup();
        let (q, li) = sample_query(&s);
        let heap = cophy_optimizer::access::heap_path(&s, &cm, &q, li, None);
        let tpl = TemplatePlan {
            internal_cost: 7.0,
            slots: vec![Slot { table: li, required: vec![], heap_cost: Some(heap.cost) }],
        };
        let c = tpl.icost(&s, &cm, &q, &[None]).unwrap();
        assert!((c - (7.0 + heap.cost)).abs() < 1e-9);
        // With a selective index the icost drops.
        let ix = Index::secondary(li, vec![s.resolve("lineitem.l_shipdate").unwrap().column]);
        let c_ix = tpl.icost(&s, &cm, &q, &[Some(&ix)]).unwrap();
        assert!(c_ix < c);
    }

    #[test]
    fn icost_none_when_uninstantiable() {
        let (s, cm) = setup();
        let (q, li) = sample_query(&s);
        let tpl = TemplatePlan {
            internal_cost: 1.0,
            slots: vec![Slot {
                table: li,
                required: vec![s.resolve("lineitem.l_quantity").unwrap().column],
                heap_cost: None,
            }],
        };
        assert!(tpl.icost(&s, &cm, &q, &[None]).is_none());
    }

    #[test]
    fn signature_dedup_key() {
        let (s, _) = setup();
        let li = s.table_by_name("lineitem").unwrap().id;
        let a = TemplatePlan {
            internal_cost: 1.0,
            slots: vec![Slot { table: li, required: vec![], heap_cost: Some(1.0) }],
        };
        let b = TemplatePlan {
            internal_cost: 2.0,
            slots: vec![Slot { table: li, required: vec![], heap_cost: Some(1.0) }],
        };
        assert_eq!(a.signature(), b.signature());
    }

    use cophy_catalog::{ColumnId, Index, TableId};
}
