//! # cophy-inum
//!
//! An implementation of INUM — *efficient use of the query optimizer for
//! automated physical design* [15] — the fast what-if layer the CoPhy paper
//! builds on.
//!
//! For each query `q`, INUM makes a small number of carefully chosen what-if
//! optimizer calls (one per combination of exploited *interesting orders*)
//! and caches the resulting **template plans**: physical plans whose leaf
//! accesses are replaced by slots.  A template `k` stores
//!
//! * `β_qk` — the *internal plan cost* of its join/aggregation operators, and
//! * per-slot order requirements, from which `γ_qkia` — the cost of
//!   instantiating slot `i` with access method `a` — is computed analytically
//!   (no optimizer call) for any candidate index.
//!
//! `cost(q, X)` is then the Definition-1 minimum
//! `min_k { β_qk + Σ_i min_{a ∈ X_i ∪ I∅} γ_qkia }`, i.e. the *linearly
//! composable* cost function of the paper, evaluated in microseconds instead
//! of a full optimization.  [`PreparedQuery::gammas_for`] exposes the γ
//! constants directly — exactly what CoPhy's BIP generator consumes.
//!
//! Preparation shards across OS threads ([`Inum::prepare_workload_parallel`])
//! and composes with workload compression
//! ([`Inum::prepare_compressed`]): only cluster representatives are probed,
//! with cluster weights scaling the cached plan costs.

pub mod cache;
pub mod cost;
pub mod ideal;
pub mod prepare;
pub mod template;

pub use cache::InumCache;
pub use cost::{AtomicChoice, CostBreakdown};
pub use ideal::{ideal_config, ideal_index};
pub use prepare::{DegradedStatement, Inum, PrepFaultReport, PreparedQuery, PreparedWorkload};
pub use template::{Slot, TemplatePlan};
