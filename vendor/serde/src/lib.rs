//! Offline stand-in for `serde`.
//!
//! Re-exports the no-op derive macros and declares the two marker traits so
//! `use serde::{Deserialize, Serialize}` resolves in both the macro and the
//! trait namespace. See `vendor/README.md`.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize` (no methods; the no-op derive
/// does not implement it).
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize` (no methods; the no-op derive
/// does not implement it).
pub trait Deserialize<'de>: Sized {}

#[cfg(test)]
mod tests {
    // The derive must parse on structs, tuple structs and enums, and must
    // tolerate `#[serde(...)]` attributes.
    use crate as serde;
    use serde::{Deserialize, Serialize};

    #[derive(Serialize, Deserialize)]
    struct Named {
        #[serde(rename = "x")]
        _a: u32,
        _b: Vec<String>,
    }

    #[derive(Serialize, Deserialize)]
    #[allow(dead_code)]
    struct Tuple(u8, f64);

    #[derive(Serialize, Deserialize)]
    #[allow(dead_code)]
    enum Kinds {
        Unit,
        Tuple(i64),
        Struct { _f: bool },
    }

    #[test]
    fn derives_parse() {
        let _ = Named { _a: 1, _b: vec![] };
        let _ = Tuple(0, 0.0);
        let _ = Kinds::Unit;
        let _ = Kinds::Tuple(3);
        let _ = Kinds::Struct { _f: true };
    }
}
