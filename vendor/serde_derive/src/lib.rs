//! Offline stand-in for `serde_derive`.
//!
//! The derives accept any input (including `#[serde(...)]` attributes) and
//! expand to nothing: no code in this repository performs serialization yet,
//! the derives only need to parse. Swapping back to the real `serde_derive`
//! is a manifest-only change.

use proc_macro::TokenStream;

/// No-op stand-in for `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
