//! Offline stand-in for `criterion` 0.5.
//!
//! Same macro/API surface (`criterion_group!`, `criterion_main!`,
//! `Criterion`, `BenchmarkGroup`, `Bencher::iter`, `BenchmarkId`,
//! [`black_box`]), minimal implementation: each benchmark runs
//! `sample_size` timed batches and reports the fastest mean per iteration
//! (coarse, but monotone with the real harness and dependency-free).
//! No statistics, plots, or report files.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer identity, as in criterion.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Benchmark identifier: `function_id/parameter`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Build an id from a function name and a parameter value.
    pub fn new(function_id: impl Display, parameter: impl Display) -> Self {
        BenchmarkId { id: format!("{function_id}/{parameter}") }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Timing loop handed to benchmark closures.
pub struct Bencher {
    samples: usize,
    /// Best observed mean time per iteration, if `iter` ran.
    elapsed: Option<Duration>,
}

impl Bencher {
    /// Time `f`, keeping the fastest of `samples` batches.
    pub fn iter<T, F: FnMut() -> T>(&mut self, mut f: F) {
        black_box(f()); // warm-up, excluded from timing
        let mut best = Duration::MAX;
        for _ in 0..self.samples {
            let t0 = Instant::now();
            black_box(f());
            best = best.min(t0.elapsed());
        }
        self.elapsed = Some(best);
    }
}

fn run_one(name: &str, samples: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher { samples, elapsed: None };
    f(&mut b);
    match b.elapsed {
        Some(d) => println!("{name:<50} time: {:>12.3} µs/iter", d.as_secs_f64() * 1e6),
        None => println!("{name:<50} (no measurement)"),
    }
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Set the number of timed batches per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Run a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(name, self.sample_size, &mut f);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { parent: self, name: name.to_string() }
    }
}

/// A group of benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Run `group/name`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, name);
        run_one(&full, self.parent.sample_size, &mut f);
        self
    }

    /// Run `group/<id>` with an input value passed to the closure.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id);
        run_one(&full, self.parent.sample_size, &mut |b| f(b, input));
        self
    }

    /// Close the group (no-op; provided for API compatibility).
    pub fn finish(self) {}
}

/// Define a benchmark group function, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Define `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_timing() {
        let mut c = Criterion::default().sample_size(3);
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        let mut g = c.benchmark_group("grp");
        g.bench_function("inner", |b| b.iter(|| black_box(2 * 2)));
        g.bench_with_input(BenchmarkId::new("param", 7), &7u32, |b, &x| {
            b.iter(|| black_box(x + 1))
        });
        g.finish();
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("optimize", 3).to_string(), "optimize/3");
    }

    mod macro_expansion {
        use super::super::*;

        fn target(c: &mut Criterion) {
            c.bench_function("macro_target", |b| b.iter(|| black_box(0)));
        }

        criterion_group!(
            name = benches;
            config = Criterion::default().sample_size(2);
            targets = target,
        );

        criterion_group!(simple, target);

        #[test]
        fn groups_run() {
            benches();
            simple();
        }
    }
}
