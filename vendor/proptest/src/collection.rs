//! Collection strategies (`prop::collection::vec`).

use std::ops::Range;

use crate::{Strategy, TestRng};

/// Strategy for `Vec<T>` with element strategy `S` and a length range.
pub struct VecStrategy<S> {
    element: S,
    len: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = self.len.clone().generate(rng);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

/// Vectors of `element` values with length drawn from `len`.
pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
    assert!(len.start < len.end, "empty length range");
    VecStrategy { element, len }
}
