//! The glob-import surface: `use proptest::prelude::*`.

pub use crate as prop;
pub use crate::{any, prop_assert, prop_assert_eq, proptest};
pub use crate::{Arbitrary, ProptestConfig, Strategy, TestCaseError, TestRng};
