//! Offline stand-in for `proptest` 1.x.
//!
//! Implements the subset this repository's property tests use: the
//! [`Strategy`] trait with `prop_map`, range / tuple / [`any`] /
//! [`collection::vec`] strategies, [`ProptestConfig`], and the
//! `proptest!` / `prop_assert!` / `prop_assert_eq!` macros.
//!
//! Differences from upstream: deterministic seeding (no persisted failure
//! file), and **no shrinking** — a failing case reports its case index and
//! message only.

use std::fmt;
use std::marker::PhantomData;
use std::ops::Range;

pub mod collection;
pub mod prelude;

/// Deterministic per-case RNG (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// RNG for the `case`-th execution of a test. Pure function of `case`.
    pub fn for_case(case: u64) -> Self {
        TestRng { state: case.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0x5DEE_CE66_D1CE_4E5B }
    }

    /// Next raw 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A generator of test-case values.
pub trait Strategy {
    /// The type of values this strategy produces.
    type Value;

    /// Produce one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, map: f }
    }
}

/// Strategy adapter produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    source: S,
    map: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.map)(self.source.generate(rng))
    }
}

macro_rules! impl_range_strategy_int {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + (rng.next_u64() % span) as i128) as $t
            }
        }
    )*};
}

impl_range_strategy_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_strategy_float {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let v = self.start + rng.next_f64() as $t * (self.end - self.start);
                if v >= self.end { self.start } else { v }
            }
        }
    )*};
}

impl_range_strategy_float!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($s,)+) = self;
                ($($s.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy!((A, B)(A, B, C)(A, B, C, D));

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Produce an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t { rng.next_u64() as $t }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite, sign-symmetric, spanning several magnitudes.
        (rng.next_f64() - 0.5) * 2e6
    }
}

/// Strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The strategy of all values of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// Test-runner configuration (subset: case count).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases each test runs.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Failure raised by `prop_assert!` family macros.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// A failed-assertion error with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError { message: message.into() }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

/// Like `assert!`, but reports the failing case through the proptest runner.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        // Bound first so clippy::neg_cmp_op_on_partial_ord does not fire on
        // float comparisons at the expansion site.
        let __prop_assert_ok: bool = $cond;
        if !__prop_assert_ok {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Like `assert_eq!`, but reports the failing case through the proptest
/// runner.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{:?}` == `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(left == right, $($fmt)+);
    }};
}

/// Declare property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `config.cases` generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    ( ($config:expr)
      $( $(#[$meta:meta])*
         fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config = $config;
                for __case in 0..__config.cases {
                    let mut __rng = $crate::TestRng::for_case(__case as u64);
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)+
                    let __result: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    if let ::std::result::Result::Err(e) = __result {
                        panic!("proptest case {}/{} failed: {}", __case, __config.cases, e);
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = crate::TestRng::for_case(0);
        for _ in 0..500 {
            let x = (3usize..9).generate(&mut rng);
            assert!((3..9).contains(&x));
            let y = (-2.0..2.0f64).generate(&mut rng);
            assert!((-2.0..2.0).contains(&y));
        }
    }

    #[test]
    fn prop_map_and_tuples_compose() {
        let strat = (1usize..4, any::<u64>()).prop_map(|(n, seed)| vec![seed; n]);
        let mut rng = crate::TestRng::for_case(1);
        for _ in 0..100 {
            let v = strat.generate(&mut rng);
            assert!((1..4).contains(&v.len()));
        }
    }

    #[test]
    fn vec_strategy_len() {
        let strat = prop::collection::vec(0.0..1.0f64, 2..5);
        let mut rng = crate::TestRng::for_case(2);
        for _ in 0..100 {
            let v = strat.generate(&mut rng);
            assert!((2..5).contains(&v.len()));
            assert!(v.iter().all(|x| (0.0..1.0).contains(x)));
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let a: Vec<u64> = {
            let mut rng = crate::TestRng::for_case(7);
            (0..4).map(|_| rng.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut rng = crate::TestRng::for_case(7);
            (0..4).map(|_| rng.next_u64()).collect()
        };
        assert_eq!(a, b);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The macro surface itself: config attr, doc comment, multiple
        /// args with trailing comma, prop_assert family.
        #[test]
        fn macro_roundtrip(
            n in 1usize..6,
            x in -10.0..10.0f64,
        ) {
            prop_assert!(n >= 1, "n was {}", n);
            prop_assert!(x.abs() <= 10.0);
            prop_assert_eq!(n, n);
        }
    }

    proptest! {
        #[test]
        fn default_config_form(seed in any::<u64>()) {
            let _ = seed;
            prop_assert!(true);
        }
    }

    #[test]
    fn failing_case_panics_with_message() {
        let result = std::panic::catch_unwind(|| {
            let __config = ProptestConfig::with_cases(1);
            for __case in 0..__config.cases {
                let mut __rng = crate::TestRng::for_case(__case as u64);
                let n = crate::Strategy::generate(&(0usize..5), &mut __rng);
                let r: Result<(), crate::TestCaseError> = (|| {
                    prop_assert!(n > 100, "n too small: {}", n);
                    Ok(())
                })();
                if let Err(e) = r {
                    panic!("proptest case failed: {e}");
                }
            }
        });
        let msg = *result.unwrap_err().downcast::<String>().unwrap();
        assert!(msg.contains("n too small"), "got: {msg}");
    }
}
