//! Generator implementations.

use crate::{Rng, SeedableRng};

/// A small, fast, non-cryptographic PRNG: xoshiro256** with SplitMix64
/// seeding (the same construction upstream `SmallRng` uses on 64-bit
/// targets, though the exact stream differs between implementations).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SmallRng {
    s: [u64; 4],
}

impl SmallRng {
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

impl SeedableRng for SmallRng {
    fn seed_from_u64(state: u64) -> Self {
        let mut sm = state;
        SmallRng {
            s: [
                Self::splitmix64(&mut sm),
                Self::splitmix64(&mut sm),
                Self::splitmix64(&mut sm),
                Self::splitmix64(&mut sm),
            ],
        }
    }
}

impl Rng for SmallRng {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}
