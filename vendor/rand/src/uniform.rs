//! Uniform sampling over ranges — the `gen_range` machinery.

use std::ops::{Range, RangeInclusive};

use crate::Rng;

/// Types `gen_range` can sample uniformly.
pub trait SampleUniform: PartialOrd + Copy {
    /// Uniform sample from `[lo, hi)`. Callers guarantee `lo < hi`.
    fn sample_half_open<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// Uniform sample from `[lo, hi]`. Callers guarantee `lo <= hi`.
    fn sample_inclusive<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[allow(unused_comparisons)]
            fn sample_half_open<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                // Work in u64 offset space so signed types and full-width
                // unsigned spans are handled uniformly.
                let span = (hi as i128 - lo as i128) as u64;
                let off = rng.next_u64() % span;
                (lo as i128 + off as i128) as $t
            }
            fn sample_inclusive<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                let off = rng.next_u64() % (span + 1);
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let f = rng.next_f64() as $t;
                let v = lo + f * (hi - lo);
                // Guard against rounding up to the excluded bound.
                if v >= hi { lo } else { v }
            }
            fn sample_inclusive<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let f = rng.next_f64() as $t;
                let v = lo + f * (hi - lo);
                if v > hi { hi } else { v }
            }
        }
    )*};
}

impl_sample_uniform_float!(f32, f64);

/// Range types accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one sample; panics on an empty range.
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        T::sample_inclusive(rng, lo, hi)
    }
}
