//! Offline stand-in for `rand` 0.8.
//!
//! Implements exactly the surface this repository uses: the [`Rng`] and
//! [`SeedableRng`] traits, [`rngs::SmallRng`] (xoshiro256** seeded via
//! SplitMix64 — a different stream than upstream `SmallRng`, but the same
//! determinism contract: equal seeds ⇒ equal streams), and
//! [`seq::SliceRandom`] with `choose` / `shuffle`.

pub mod rngs;
pub mod seq;

mod uniform;

pub use uniform::{SampleRange, SampleUniform};

/// Subset of `rand::Rng`: uniform ranges and Bernoulli draws on top of a raw
/// 64-bit generator.
pub trait Rng {
    /// The raw generator: uniform bits.
    fn next_u64(&mut self) -> u64;

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform sample from a half-open (`a..b`) or inclusive (`a..=b`) range.
    ///
    /// Panics if the range is empty, matching upstream behaviour.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Bernoulli draw: `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        debug_assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        self.next_f64() < p
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Subset of `rand::SeedableRng`: deterministic construction from a `u64`.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is a pure function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn determinism_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        let mut c = SmallRng::seed_from_u64(43);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn gen_range_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..2000 {
            let x: usize = rng.gen_range(3..9);
            assert!((3..9).contains(&x));
            let y: f64 = rng.gen_range(-1.5..2.5);
            assert!((-1.5..2.5).contains(&y));
            let z: i64 = rng.gen_range(-5..=5);
            assert!((-5..=5).contains(&z));
            let w: f64 = rng.gen_range(0.25..=0.75);
            assert!((0.25..=0.75).contains(&w));
        }
    }

    #[test]
    fn gen_range_hits_full_support() {
        let mut rng = SmallRng::seed_from_u64(11);
        let mut seen = [false; 6];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..6)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all 6 values should appear: {seen:?}");
    }

    #[test]
    fn singleton_ranges() {
        let mut rng = SmallRng::seed_from_u64(1);
        assert_eq!(rng.gen_range(4usize..5), 4);
        assert_eq!(rng.gen_range(4usize..=4), 4);
    }

    #[test]
    #[should_panic]
    fn empty_range_panics() {
        let mut rng = SmallRng::seed_from_u64(1);
        let _ = rng.gen_range(5usize..5);
    }

    #[test]
    fn gen_bool_frequency() {
        let mut rng = SmallRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "p=0.3 gave {hits}/10000");
    }

    #[test]
    fn choose_and_shuffle() {
        let mut rng = SmallRng::seed_from_u64(9);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        let items = [10, 20, 30];
        for _ in 0..100 {
            assert!(items.contains(items.choose(&mut rng).unwrap()));
        }
        let mut v: Vec<u32> = (0..50).collect();
        let orig = v.clone();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, orig, "shuffle must be a permutation");
        assert_ne!(v, orig, "50 elements staying in place is astronomically unlikely");
    }

    #[test]
    fn rng_through_mut_ref() {
        fn draw<R: Rng>(mut rng: R) -> u64 {
            rng.next_u64()
        }
        let mut rng = SmallRng::seed_from_u64(5);
        let _ = draw(&mut rng);
        let _ = rng.next_u64();
    }
}
