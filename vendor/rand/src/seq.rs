//! Slice sampling helpers — the `rand::seq` subset this repo uses.

use crate::Rng;

/// `choose` / `shuffle` on slices.
pub trait SliceRandom {
    /// Element type of the underlying slice.
    type Item;

    /// Uniformly pick a reference to one element, or `None` if empty.
    fn choose<R: Rng>(&self, rng: &mut R) -> Option<&Self::Item>;

    /// Fisher–Yates shuffle in place.
    fn shuffle<R: Rng>(&mut self, rng: &mut R);
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn choose<R: Rng>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            self.get((rng.next_u64() % self.len() as u64) as usize)
        }
    }

    fn shuffle<R: Rng>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = (rng.next_u64() % (i as u64 + 1)) as usize;
            self.swap(i, j);
        }
    }
}
