//! Face-off: CoPhy vs the three baselines of the paper's evaluation on the
//! same workload, same budget, same ground-truth metric.
//!
//! ```sh
//! cargo run --release -p cophy-examples --example advisor_faceoff
//! ```

use std::time::Instant;

use cophy::{CGen, CoPhy, CoPhyOptions, ConstraintSet};
use cophy_advisors::{Advisor, IlpAdvisor, ToolA, ToolB};
use cophy_catalog::TpchGen;
use cophy_optimizer::{SystemProfile, WhatIfOptimizer};
use cophy_workload::HetGen;

fn main() {
    let optimizer = WhatIfOptimizer::new(TpchGen::default().schema(), SystemProfile::A);
    let schema = optimizer.schema();
    // A heterogeneous workload — the regime where formulation quality shows.
    let workload = HetGen::new(1234).generate(schema, 60);
    let constraints = ConstraintSet::storage_fraction(schema, 1.0);

    println!("60-statement heterogeneous workload, storage budget = data size\n");
    println!("advisor   perf(X*,W)   wall time   indexes");

    // CoPhy.
    let t = Instant::now();
    let rec = CoPhy::new(&optimizer, CoPhyOptions::default()).tune(&workload, &constraints);
    let perf = optimizer.perf(&workload, &rec.configuration);
    println!(
        "CoPhy     {:>8.1}%   {:>9.2}s   {}",
        perf * 100.0,
        t.elapsed().as_secs_f64(),
        rec.configuration.len()
    );

    // ILP (same candidates, same solver, different formulation).
    let candidates = CGen::default().generate(schema, &workload);
    let ilp = IlpAdvisor::default();
    let t = Instant::now();
    let (cfg, stats) = ilp.recommend_with_stats(&optimizer, &workload, &candidates, &constraints);
    println!(
        "ILP       {:>8.1}%   {:>9.2}s   {}   (build {:.2}s: enumerated {} atomic configs)",
        optimizer.perf(&workload, &cfg) * 100.0,
        t.elapsed().as_secs_f64(),
        cfg.len(),
        stats.build_time.as_secs_f64(),
        stats.configs_enumerated
    );

    // Tool-A (relaxation-based, optimizer-in-the-loop).
    let tool_a = ToolA::default();
    let t = Instant::now();
    let cfg = tool_a.recommend(&optimizer, &workload, &constraints);
    println!(
        "Tool-A    {:>8.1}%   {:>9.2}s   {}",
        optimizer.perf(&workload, &cfg) * 100.0,
        t.elapsed().as_secs_f64(),
        cfg.len()
    );

    // Tool-B (greedy over a compressed workload).
    let tool_b = ToolB::default();
    let t = Instant::now();
    let cfg = tool_b.recommend(&optimizer, &workload, &constraints);
    println!(
        "Tool-B    {:>8.1}%   {:>9.2}s   {}",
        optimizer.perf(&workload, &cfg) * 100.0,
        t.elapsed().as_secs_f64(),
        cfg.len()
    );
}
