//! Quickstart: tune a TPC-H workload with CoPhy in a dozen lines.
//!
//! ```sh
//! cargo run --release -p cophy-examples --example quickstart
//! ```

use cophy::{CoPhy, CoPhyOptions, ConstraintSet};
use cophy_catalog::TpchGen;
use cophy_optimizer::{SystemProfile, WhatIfOptimizer};
use cophy_workload::{sql, HomGen};

fn main() {
    // 1. A database: the TPC-H schema at scale factor 1, uniform data.
    let optimizer = WhatIfOptimizer::new(TpchGen::default().schema(), SystemProfile::A);
    let schema = optimizer.schema();

    // 2. A workload: 100 statements from the fifteen TPC-H-like templates.
    let workload = HomGen::new(42).generate(schema, 100);
    println!(
        "First workload statement:\n{}\n",
        sql::format_statement(schema, workload.statement(cophy_workload::QueryId(0)))
    );

    // 3. Tune under a storage budget of half the database size.
    let cophy = CoPhy::new(&optimizer, CoPhyOptions::default());
    let constraints = ConstraintSet::storage_fraction(schema, 0.5);
    let rec = cophy.tune(&workload, &constraints);

    // 4. Inspect the recommendation.
    println!(
        "CoPhy examined {} candidates and recommends {} indexes \
         ({:.1} MB, {:.1}% estimated improvement, gap {:.1}%):",
        rec.stats.n_candidates,
        rec.configuration.len(),
        rec.configuration.size_bytes(schema) as f64 / 1e6,
        rec.estimated_improvement() * 100.0,
        rec.gap * 100.0
    );
    let mut names: Vec<String> = rec.configuration.iter().map(|ix| ix.describe(schema)).collect();
    names.sort();
    for n in names.iter().take(12) {
        println!("  CREATE INDEX {n}");
    }
    if names.len() > 12 {
        println!("  … and {} more", names.len() - 12);
    }

    // 5. Validate against the ground-truth optimizer (the §5.1 metric).
    let perf = optimizer.perf(&workload, &rec.configuration);
    println!("\nGround-truth perf(X*, W) = {:.1}% cost reduction", perf * 100.0);
    println!(
        "Timing: INUM {:?}  build {:?}  solve {:?}  ({} what-if calls)",
        rec.stats.inum_time, rec.stats.build_time, rec.stats.solve_time, rec.stats.what_if_calls
    );
}
