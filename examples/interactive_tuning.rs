//! Interactive tuning: the DBA loop of paper §4.2 / Figure 6b.
//!
//! A tuning session keeps the INUM cache and the solver's warm state, so
//! exploring "what if I add these hand-crafted indexes?", "what about a
//! smaller budget?", "and with next week's queries?" costs a fraction of the
//! initial run.
//!
//! ```sh
//! cargo run --release -p cophy-examples --example interactive_tuning
//! ```

use std::time::Instant;

use cophy::{CoPhy, CoPhyOptions, ConstraintSet};
use cophy_catalog::{Index, TpchGen};
use cophy_optimizer::{SystemProfile, WhatIfOptimizer};
use cophy_workload::HomGen;

fn main() {
    let optimizer = WhatIfOptimizer::new(TpchGen::default().schema(), SystemProfile::A);
    let schema = optimizer.schema();
    let workload = HomGen::new(99).generate(schema, 80);

    let cophy = CoPhy::new(&optimizer, CoPhyOptions::default());
    let mut session = cophy.session(&workload, ConstraintSet::storage_fraction(schema, 1.0));

    // --- initial recommendation -------------------------------------------
    let t0 = Instant::now();
    let r1 = session.recommend();
    println!(
        "initial: {} indexes, est. improvement {:.1}%, took {:?} (solve {:?})",
        r1.configuration.len(),
        r1.estimated_improvement() * 100.0,
        t0.elapsed(),
        r1.stats.solve_time
    );

    // --- DBA hands in pet indexes (S_DBA) ----------------------------------
    let li = schema.table_by_name("lineitem").unwrap();
    let sd = li.column_by_name("l_shipdate").unwrap();
    let ok = li.column_by_name("l_orderkey").unwrap();
    session.add_candidates([
        Index::secondary(li.id, vec![sd, ok]),
        Index::secondary(li.id, vec![ok, sd]),
    ]);
    let t1 = Instant::now();
    let r2 = session.recommend();
    println!(
        "after +2 DBA candidates: {} indexes, est. {:.1}%, re-solve took {:?}",
        r2.configuration.len(),
        r2.estimated_improvement() * 100.0,
        t1.elapsed()
    );

    // --- tighten the budget -------------------------------------------------
    session.set_constraints(ConstraintSet::storage_fraction(schema, 0.25));
    let t2 = Instant::now();
    let r3 = session.recommend();
    println!(
        "after budget 1.0 → 0.25: {} indexes ({:.1} MB), est. {:.1}%, re-solve took {:?}",
        r3.configuration.len(),
        r3.configuration.size_bytes(schema) as f64 / 1e6,
        r3.estimated_improvement() * 100.0,
        t2.elapsed()
    );

    // --- next week's queries arrive -----------------------------------------
    let monday = HomGen::new(100).generate(schema, 20);
    session.add_statements(&monday);
    let t3 = Instant::now();
    let r4 = session.recommend();
    println!(
        "after +20 statements: {} statements total, est. {:.1}%, re-solve took {:?}",
        session.n_statements(),
        r4.estimated_improvement() * 100.0,
        t3.elapsed()
    );
}
