//! Interactive tuning: the DBA loop of paper §4.2 / Figure 6b.
//!
//! A tuning session keeps the INUM cache and the solver's warm state, so
//! exploring "what if I add these hand-crafted indexes?", "what about a
//! smaller budget?", "and with next week's queries?" costs a fraction of the
//! initial run.
//!
//! ```sh
//! cargo run --release -p cophy-examples --example interactive_tuning
//! ```

use std::time::Instant;

use cophy::{CGen, CoPhy, CoPhyOptions, ConstraintSet};
use cophy_catalog::{Index, TpchGen};
use cophy_optimizer::{SystemProfile, WhatIfOptimizer};
use cophy_workload::HomGen;

fn main() {
    let optimizer = WhatIfOptimizer::new(TpchGen::default().schema(), SystemProfile::A);
    let schema = optimizer.schema();
    let workload = HomGen::new(99).generate(schema, 80);

    let cophy = CoPhy::new(&optimizer, CoPhyOptions::default());
    let mut session = cophy.session(&workload, ConstraintSet::storage_fraction(schema, 1.0));

    // --- initial recommendation -------------------------------------------
    let t0 = Instant::now();
    let r1 = session.recommend();
    println!(
        "initial: {} indexes, est. improvement {:.1}%, took {:?} (solve {:?})",
        r1.configuration.len(),
        r1.estimated_improvement() * 100.0,
        t0.elapsed(),
        r1.stats.solve_time
    );

    // --- DBA hands in pet indexes (S_DBA) ----------------------------------
    let li = schema.table_by_name("lineitem").unwrap();
    let sd = li.column_by_name("l_shipdate").unwrap();
    let ok = li.column_by_name("l_orderkey").unwrap();
    session.add_candidates([
        Index::secondary(li.id, vec![sd, ok]),
        Index::secondary(li.id, vec![ok, sd]),
    ]);
    let t1 = Instant::now();
    let r2 = session.recommend();
    println!(
        "after +2 DBA candidates: {} indexes, est. {:.1}%, re-solve took {:?}",
        r2.configuration.len(),
        r2.estimated_improvement() * 100.0,
        t1.elapsed()
    );

    // --- tighten the budget -------------------------------------------------
    session.set_constraints(ConstraintSet::storage_fraction(schema, 0.25));
    let t2 = Instant::now();
    let r3 = session.recommend();
    println!(
        "after budget 1.0 → 0.25: {} indexes ({:.1} MB), est. {:.1}%, re-solve took {:?}",
        r3.configuration.len(),
        r3.configuration.size_bytes(schema) as f64 / 1e6,
        r3.estimated_improvement() * 100.0,
        t2.elapsed()
    );

    // --- next week's queries arrive -----------------------------------------
    let monday = HomGen::new(100).generate(schema, 20);
    session.add_statements(&monday);
    let t3 = Instant::now();
    let r4 = session.recommend();
    println!(
        "after +20 statements: {} statements total, est. {:.1}%, re-solve took {:?}",
        session.n_statements(),
        r4.estimated_improvement() * 100.0,
        t3.elapsed()
    );

    // --- the warm re-optimization surface -----------------------------------
    // Budget sweeps, pin/ban and what-if probes run on the session's
    // interactive BIP (branch-and-bound + ModelDelta/ResolveContext), whose
    // dense LPs want a smaller workload and a lean candidate grammar so
    // every answer lands in interactive time.
    let small = HomGen::new(101).generate(schema, 12);
    let lab_cophy = CoPhy::new(
        &optimizer,
        CoPhyOptions {
            cgen: CGen { max_key_columns: 2, max_include_columns: 0 },
            ..Default::default()
        },
    );
    let mut lab = lab_cophy.session(&small, ConstraintSet::storage_fraction(schema, 1.0));

    // One warm chain answers a whole budget sweep (paper Fig. 10): each
    // point re-solves from the previous basis/incumbent/pseudo-costs.
    let total = schema.data_bytes();
    let budgets: Vec<u64> = [1.0, 0.4, 0.1].iter().map(|m| (total as f64 * m) as u64).collect();
    let t4 = Instant::now();
    let sweep = lab.sweep_storage(&budgets);
    println!("\nbudget sweep ({} points, one warm chain, {:?}):", sweep.len(), t4.elapsed());
    for p in &sweep {
        println!(
            "  M = {:>7.1} MB → {} indexes, cost {:.0} (gap {:.1}%, {} pivots, {:?})",
            p.budget_bytes as f64 / 1e6,
            p.configuration.len(),
            p.objective,
            p.gap * 100.0,
            p.pivots,
            p.solve_time
        );
    }

    // Pin a pet index in, ban a recommended one out; the fixings are bound
    // pinches, so the re-solves stay warm.
    let pet = Index::secondary(li.id, vec![ok, sd]);
    lab.pin_index(&pet);
    if let Some(out) = sweep[0].configuration.indexes().first().cloned() {
        lab.ban_index(&out);
    }
    let t5 = Instant::now();
    let fixed = lab.recommend();
    println!(
        "with 1 pin + 1 ban: {} indexes, est. {:.1}%, re-solve took {:?}",
        fixed.configuration.len(),
        fixed.estimated_improvement() * 100.0,
        t5.elapsed()
    );

    // "What does this configuration cost?" — answered from the INUM cache,
    // zero optimizer calls.
    let probe = lab.what_if(&fixed.configuration);
    println!(
        "what-if probe: cost {:.0} vs baseline {:.0} ({:.1}% better), {:.1} MB, violations: {:?}",
        probe.cost,
        probe.baseline_cost,
        probe.improvement() * 100.0,
        probe.size_bytes as f64 / 1e6,
        probe.constraint_violation
    );
}
