//! Soft constraints: explore the storage/performance Pareto frontier with
//! the Chord algorithm (paper §4.1, Figure 6c).
//!
//! Instead of fixing a storage budget, the DBA asks "how much does each
//! megabyte of indexes buy me?" and receives a handful of Pareto-optimal
//! configurations to choose from.
//!
//! ```sh
//! cargo run --release -p cophy-examples --example soft_constraints
//! ```

use cophy::{CGen, ChordExplorer, CoPhy, CoPhyOptions};
use cophy_catalog::TpchGen;
use cophy_inum::Inum;
use cophy_optimizer::{SystemProfile, WhatIfOptimizer};
use cophy_workload::HomGen;

fn main() {
    let optimizer = WhatIfOptimizer::new(TpchGen::default().schema(), SystemProfile::A);
    let schema = optimizer.schema();
    let workload = HomGen::new(7).generate(schema, 60);

    let cophy = CoPhy::new(&optimizer, CoPhyOptions::default());
    let inum = Inum::new(&optimizer);
    let prepared = inum.prepare_workload(&workload);
    let candidates = CGen::default().generate(schema, &workload);

    println!("Exploring the cost/storage frontier over {} candidates…\n", candidates.len());
    let explorer = ChordExplorer { epsilon: 0.02, max_points: 7 };
    let points = explorer.explore(&cophy, &prepared, &candidates);

    println!("lambda   indexes   storage(MB)   workload cost   solve time");
    for p in &points {
        println!(
            "{:<8.2} {:<9} {:<13.1} {:<15.0} {:?}",
            p.lambda,
            p.configuration.len(),
            p.size_bytes as f64 / 1e6,
            p.workload_cost,
            p.solve_time
        );
    }

    // The frontier is monotone: more storage, less cost.
    let knee = points
        .windows(2)
        .max_by(|a, b| {
            let ga = gain_per_byte(&a[0], &a[1]);
            let gb = gain_per_byte(&b[0], &b[1]);
            ga.total_cmp(&gb)
        })
        .map(|w| w[1].lambda);
    if let Some(l) = knee {
        println!("\nSteepest gain-per-byte segment ends at λ = {l:.2} — a good default budget.");
    }
}

fn gain_per_byte(a: &cophy::ParetoPoint, b: &cophy::ParetoPoint) -> f64 {
    let dcost = a.workload_cost - b.workload_cost;
    let dsize = (b.size_bytes - a.size_bytes) as f64;
    if dsize <= 0.0 {
        0.0
    } else {
        dcost / dsize
    }
}
