//! The constraint language of Appendix E: storage budgets, per-table index
//! caps, wide-index limits, clustered-index generators and per-query cost
//! assertions — all translated to linear BIP rows.
//!
//! ```sh
//! cargo run --release -p cophy-examples --example constraint_language
//! ```

use cophy::{Cmp, CoPhy, CoPhyOptions, Constraint, ConstraintSet, IndexFilter};
use cophy_catalog::TpchGen;
use cophy_optimizer::{SystemProfile, WhatIfOptimizer};
use cophy_workload::HomGen;

fn main() {
    let optimizer = WhatIfOptimizer::new(TpchGen::default().schema(), SystemProfile::A);
    let schema = optimizer.schema();
    // Rich (non-storage-only) constraint sets route to the generic
    // branch-and-bound backend.  Its anytime engine (LP-rounding incumbent
    // seeded from the Lagrangian storage projection, pseudo-cost branching,
    // default 60 s budget) delivers a bounded-gap answer even at real
    // workload sizes, so no miniature workaround workload is needed.
    let workload = HomGen::new(11).generate(schema, 24);
    let cophy = CoPhy::new(&optimizer, CoPhyOptions::default());
    let lineitem = schema.table_by_name("lineitem").unwrap().id;

    // Plain storage budget (the §3.2 running example).
    let budget_only = ConstraintSet::storage_fraction(schema, 0.5);
    let r = cophy.tune(&workload, &budget_only);
    report(schema, "storage ≤ 0.5×data", &r);

    // E.1-style: at most 2 indexes with more than 2 columns on lineitem.
    let wide_cap = ConstraintSet::storage_fraction(schema, 0.5).with(Constraint::IndexCount {
        filter: IndexFilter { table: Some(lineitem), min_columns: Some(3), ..Default::default() },
        cmp: Cmp::Le,
        value: 2,
    });
    let r = cophy.tune(&workload, &wide_cap);
    report(schema, "… + ≤2 wide lineitem indexes", &r);
    let wide = r.configuration.on_table(lineitem).filter(|ix| ix.n_columns() >= 3).count();
    println!("    (wide lineitem indexes in X*: {wide})");

    // E.3 generator: at most one clustered index per table (always on in real
    // systems; here it is an explicit linear row per table).
    let clustered = wide_cap.clone().with(Constraint::OneClusteredPerTable);
    let r = cophy.tune(&workload, &clustered);
    report(schema, "… + one clustered per table", &r);

    // E.2: every query within 80% of its baseline cost (a regression guard).
    let guarded = ConstraintSet::storage_fraction(schema, 0.5)
        .with(Constraint::AllQueryCosts { factor: 0.8 });
    match cophy.try_tune(&workload, &guarded) {
        Ok(r) => report(schema, "… + every query ≤0.8×baseline", &r),
        Err(e) => println!("  every-query bound not satisfiable as stated: {e}"),
    }

    // An infeasible set is *reported*, not silently mangled (Figure 3 line 2).
    let impossible = ConstraintSet::none()
        .with(Constraint::IndexCount { filter: IndexFilter::all(), cmp: Cmp::Ge, value: 5 })
        .with(Constraint::IndexCount { filter: IndexFilter::all(), cmp: Cmp::Le, value: 2 });
    match cophy.try_tune(&workload, &impossible) {
        Ok(_) => unreachable!(),
        Err(e) => println!("  infeasible set correctly rejected: {e}"),
    }
}

fn report(schema: &cophy_catalog::Schema, label: &str, r: &cophy::Recommendation) {
    // The anytime contract: every tune terminates with a *finite* proven
    // optimality gap, storage-only and rich constraint sets alike.
    assert!(r.gap.is_finite(), "[{label}] solver returned an unbounded gap");
    println!(
        "  [{label}] {} indexes, {:.1} MB, est. improvement {:.1}%, proven gap {:.1}%",
        r.configuration.len(),
        r.configuration.size_bytes(schema) as f64 / 1e6,
        r.estimated_improvement() * 100.0,
        r.gap * 100.0
    );
}
